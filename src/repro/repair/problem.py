"""Declarative repair problems.

A :class:`RepairProblem` is the common shape behind Propositions 1–4:
decision variables, a pluggable cost (:mod:`repro.core.costs`),
parametric side conditions ``M_Z |= φ`` awaiting state elimination,
extra rational/box constraints, and four flavour hooks (pre-check,
instantiate, verify, ε-bound).  The flavour modules *build* problems;
:func:`repro.repair.engine.solve_repair` runs them.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.checking.cache import CheckCache, cached_check, get_cache
from repro.checking.parametric import ParametricConstraint, ParametricDTMC
from repro.logic.pctl import StateFormula
from repro.optimize import Constraint, Variable, constraint_from_parametric

#: Default relative margin keeping NLP solutions strictly inside the
#: feasible region so the exact concrete re-check cannot fail by a
#: rounding hair (see :func:`repro.optimize.constraint_from_parametric`).
DEFAULT_SAFETY_MARGIN = 1e-6


class ParametricSpec:
    """One ``model |= formula`` side condition awaiting elimination.

    The reduction to a rational constraint is memoised through
    :class:`~repro.checking.cache.CheckCache` — content-identical
    (model, formula, method) triples are eliminated once per process
    (or once per *store* when the cache has a persistent backing).
    """

    def __init__(
        self,
        model: ParametricDTMC,
        formula: StateFormula,
        method: str = "gauss",
    ):
        #: A :class:`ParametricDTMC`, or a zero-argument thunk building
        #: one (for flavours that lift lazily, e.g. Data Repair's
        #: parametric MLE model).
        self.model = model
        self.formula = formula
        self.method = method

    def resolve_model(self) -> ParametricDTMC:
        """The parametric model, building it if given as a thunk."""
        return self.model() if callable(self.model) else self.model

    def reduced(self, cache: Optional[CheckCache] = None) -> ParametricConstraint:
        """The memoised closed form ``f(v) ⋈ b`` (Proposition 2)."""
        return get_cache(cache).parametric_constraint(
            self.resolve_model(), self.formula, self.method
        )


class RepairProblem:
    """Variables + constraints + cost + flavour hooks; solver-ready.

    Parameters
    ----------
    variables:
        The repair parameters (:class:`repro.optimize.Variable`).
    cost:
        The objective over the variable assignment: a callable, or a
        named cost from :data:`repro.core.costs.NAMED_COSTS`.
    name:
        Short tag used in constraint names and diagnostics.
    parametric:
        :class:`ParametricSpec` side conditions (or already-reduced
        :class:`ParametricConstraint` objects) adapted into solver
        constraints with ``safety_margin``.
    constraints:
        Extra :class:`repro.optimize.Constraint` objects used verbatim
        (row-sum bounds, Q-value margins, …).
    original / formula:
        When both are given, the driver's already-satisfied pre-check
        and the post-solve verification default to
        :func:`repro.checking.cache.cached_check` on them — the DTMC/MDP
        path.  Flavours over other artifacts supply ``check``/``verify``
        instead.
    check:
        Zero-argument pre-check hook; ``True`` short-circuits the solve.
    instantiate:
        ``assignment -> artifact`` (repaired chain, θ′, CTMC, …).
    verify:
        ``artifact -> bool`` concrete re-verification hook.
    epsilon:
        ``artifact -> float`` bound computation (Proposition 1's
        ε-bisimulation for Model Repair); 0.0 when absent.
    instantiate_when_infeasible:
        Build the artifact even at an infeasible solver point (Reward
        Repair reports the least-infeasible θ′ for diagnostics).
    already_satisfied_message / no_variable_message:
        Messages for the two short-circuit outcomes.
    cache / engine:
        Memo (``None`` selects the process-wide cache) and numeric
        engine for the default check/verify paths.
    """

    def __init__(
        self,
        *,
        variables: Sequence[Variable],
        cost,
        name: str = "repair",
        parametric: Sequence = (),
        constraints: Sequence[Constraint] = (),
        safety_margin: float = DEFAULT_SAFETY_MARGIN,
        original=None,
        formula: Optional[StateFormula] = None,
        check: Optional[Callable[[], bool]] = None,
        instantiate: Optional[Callable] = None,
        verify: Optional[Callable] = None,
        epsilon: Optional[Callable] = None,
        instantiate_when_infeasible: bool = False,
        already_satisfied_message: str = "requirement already satisfied",
        no_variable_message: str = "repair problem has no free variables",
        cache: Optional[CheckCache] = None,
        engine: str = "sparse",
    ):
        self.variables = list(variables)
        self.cost = _resolve_cost(cost)
        #: Analytic gradient of the cost (``None`` for non-smooth costs;
        #: the NLP then finite-differences the objective as before).
        self.cost_gradient = _resolve_cost_gradient(cost)
        self.name = name
        self.parametric = list(parametric)
        self.constraints = list(constraints)
        self.safety_margin = safety_margin
        self.original = original
        self.formula = formula
        self.check = check
        self.instantiate = instantiate
        self.verify = verify
        self.epsilon = epsilon
        self.instantiate_when_infeasible = instantiate_when_infeasible
        self.already_satisfied_message = already_satisfied_message
        self.no_variable_message = no_variable_message
        self.cache = cache
        self.engine = engine

    # ------------------------------------------------------------------
    # Pieces the driver consumes
    # ------------------------------------------------------------------
    def initial_assignment(self) -> dict:
        """Every variable at its start value (the identity repair)."""
        return {v.name: float(v.initial) for v in self.variables}

    def parametric_constraints(self) -> List[ParametricConstraint]:
        """The reduced closed forms of every parametric side condition.

        Memoised per problem instance: the driver consumes the list
        twice per solve (fused kernel + solver constraints), and even a
        CheckCache hit pays a content fingerprint over the symbolic
        transition matrix, which is measurable on warm repairs.
        """
        if getattr(self, "_reduced", None) is None:
            self._reduced = [
                spec.reduced(self.cache)
                if isinstance(spec, ParametricSpec)
                else spec
                for spec in self.parametric
            ]
        return list(self._reduced)

    def solver_constraints(self, compiled: bool = True) -> List[Constraint]:
        """All NLP constraints: adapted parametric ones + extras.

        ``compiled=False`` adapts the parametric constraints through the
        pure-symbolic margin (no kernels, no analytic jacobians) — the
        pre-kernel behaviour, kept for before/after benchmarking.
        """
        adapted = [
            constraint_from_parametric(
                reduced,
                name=f"{self.name}-pctl-{index}",
                safety_margin=self.safety_margin,
                compiled=compiled,
            )
            for index, reduced in enumerate(self.parametric_constraints())
        ]
        return adapted + self.constraints

    def stacked_kernel(self):
        """One fused kernel over every parametric constraint (memoised).

        The rows of the
        :class:`~repro.symbolic.compile.StackedConstraintKernel` follow
        :meth:`parametric_constraints` order — the same order
        :meth:`solver_constraints` adapts them in, which is what lets
        :meth:`NonlinearProgram.solve` line the kernel rows up with the
        stackable constraints.  Memoised through the problem's
        :class:`~repro.checking.cache.CheckCache`, so same-fingerprint
        service jobs (and warm stores) share one compiled stack.
        Returns ``None`` when there are no parametric constraints.
        """
        reduced = self.parametric_constraints()
        if not reduced:
            return None
        return get_cache(self.cache).stacked_kernel(reduced)

    # ------------------------------------------------------------------
    # Hook dispatch (with the DTMC/MDP defaults)
    # ------------------------------------------------------------------
    def run_check(self) -> bool:
        """Whether the requirement already holds without any repair."""
        if self.check is not None:
            return bool(self.check())
        if self.original is not None and self.formula is not None:
            return cached_check(
                self.original, self.formula, engine=self.engine, cache=self.cache
            ).holds
        return False

    def run_instantiate(self, assignment):
        """The repaired artifact at ``assignment`` (``None`` if no hook)."""
        if self.instantiate is None:
            return None
        return self.instantiate(assignment)

    def run_verify(self, artifact) -> bool:
        """Concrete re-verification of the repaired artifact."""
        if self.verify is not None:
            return bool(self.verify(artifact))
        if self.formula is not None and artifact is not None:
            return cached_check(
                artifact, self.formula, engine=self.engine, cache=self.cache
            ).holds
        return True

    def run_epsilon(self, artifact) -> float:
        """The flavour's post-repair bound (0.0 when not defined)."""
        if self.epsilon is None or artifact is None:
            return 0.0
        return float(self.epsilon(artifact))


def _resolve_cost(cost):
    # Lazy import: repro.core imports the flavour modules, which import
    # this package — resolving at construction time avoids the cycle.
    from repro.core.costs import resolve_cost

    return resolve_cost(cost)


def _resolve_cost_gradient(cost):
    from repro.core.costs import resolve_cost_gradient

    return resolve_cost_gradient(cost)
