"""Robust repair over interval uncertainty sets (the fifth flavour).

The paper repairs a single nominal model, but learned transition
probabilities are exactly where point estimates are least trustworthy.
Following the robust-MDP line of work (Puggelli et al.; Suilen et al.,
"Robust MDPs: A Place Where AI and Formal Methods Meet"),
:class:`RobustRepair` strengthens any model/data-repair builder so the
result satisfies ``φ`` for *every* chain in the ±ε interval ball around
the repaired model, not just the nominal instantiation:

1. **robust pre-check** — adversarial (robust) value iteration on the
   ε-ball around the original model; a robustly-satisfied original
   short-circuits the solve;
2. **nominal solve** — the wrapped builder's
   :class:`~repro.repair.RepairProblem` runs through the shared engine,
   with the concrete re-verification hook replaced by robust VI over
   the interval set (never sampling);
3. **certificate** — a :class:`RobustCertificate` records the
   worst-case value and signed margin over the uncertainty set, plus
   nature's extremal member chain as a counterexample witness when
   verification fails;
4. **outer tightening loop** — when the nominal repair is not robust,
   the constraint bound is tightened by the measured shortfall (times a
   safety factor) and the problem re-solved, a bounded number of times.

Graceful degradation, never a silent pass: robust VI runs under an
iteration cap with divergence detection and falls back to the nominal
check with ``robust=False`` (and a ``fallback_reason``) when it cannot
certify — the service layer surfaces those via the
``robust_vi_iterations`` / ``robust_fallbacks`` telemetry counters.

See ``docs/robust_repair.md`` for the certificate semantics and the
full fallback ladder.
"""

from __future__ import annotations

import copy
from typing import Dict, Mapping, Optional

from repro.checking.cache import cached_check
from repro.logic.pctl import (
    ProbabilisticOperator,
    RewardOperator,
    TrueFormula,
    Until,
    check_comparison,
)
from repro.mdp.interval import IntervalDTMC
from repro.mdp.model import DTMC
from repro.repair.engine import solve_repair
from repro.repair.results import RepairResult

#: Default interval half-width of the uncertainty ball.
DEFAULT_EPSILON = 0.01
#: Default bound on constraint-tightening re-solves.
DEFAULT_MAX_OUTER_ITERATIONS = 5
#: Default robust-VI iteration cap (well below the module-level VI
#: ceiling, so a stuck iteration degrades instead of spinning).
DEFAULT_VI_MAX_ITERATIONS = 50_000
#: The measured robustness shortfall is multiplied by this factor when
#: tightening, so the loop overshoots slightly instead of creeping.
DEFAULT_TIGHTEN_SAFETY = 1.25


class RobustCertificate:
    """The interval-aware verdict attached to a robust repair.

    Attributes
    ----------
    epsilon:
        Half-width of the interval uncertainty ball.
    robust:
        ``True`` iff the verdict comes from converged robust value
        iteration over the full interval set; ``False`` marks a
        nominal-check fallback (see ``fallback_reason``).
    holds:
        The verdict itself (robust when ``robust``, nominal otherwise).
    value:
        The adversarial (worst-case) quantity at the initial state —
        nominal when ``robust`` is ``False``; ``None`` when even the
        nominal check was non-quantitative.
    margin:
        Signed slack against the bound: positive means the property
        holds with room to spare under every member chain, negative
        measures the worst-case violation.
    vi_iterations / converged:
        Robust-VI accounting (0 / ``False`` on the pure-nominal path).
    fallback_reason:
        ``None`` on the robust path; otherwise why robust VI was
        abandoned (``"vi-iteration-cap"``, ``"vi-diverged"``,
        ``"unsupported-formula"``).
    witness:
        Nature's extremal member chain (a concrete :class:`DTMC`)
        witnessing the worst case when verification fails; not part of
        :meth:`to_dict` — results serialise it separately.
    """

    def __init__(
        self,
        epsilon: float,
        robust: bool,
        holds: bool,
        value: Optional[float],
        bound: float,
        comparison: str,
        margin: Optional[float],
        vi_iterations: int = 0,
        converged: bool = False,
        fallback_reason: Optional[str] = None,
        witness: Optional[DTMC] = None,
    ):
        self.epsilon = float(epsilon)
        self.robust = bool(robust)
        self.holds = bool(holds)
        self.value = None if value is None else float(value)
        self.bound = float(bound)
        self.comparison = str(comparison)
        self.margin = None if margin is None else float(margin)
        self.vi_iterations = int(vi_iterations)
        self.converged = bool(converged)
        self.fallback_reason = fallback_reason
        self.witness = witness

    def to_dict(self) -> Dict:
        return {
            "epsilon": self.epsilon,
            "robust": self.robust,
            "holds": self.holds,
            "value": self.value,
            "bound": self.bound,
            "comparison": self.comparison,
            "margin": self.margin,
            "vi_iterations": self.vi_iterations,
            "converged": self.converged,
            "fallback_reason": self.fallback_reason,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "RobustCertificate":
        return cls(
            epsilon=payload["epsilon"],
            robust=payload["robust"],
            holds=payload["holds"],
            value=payload.get("value"),
            bound=payload["bound"],
            comparison=payload["comparison"],
            margin=payload.get("margin"),
            vi_iterations=payload.get("vi_iterations", 0),
            converged=payload.get("converged", False),
            fallback_reason=payload.get("fallback_reason"),
        )

    def __repr__(self) -> str:
        margin = "None" if self.margin is None else f"{self.margin:.6g}"
        return (
            f"RobustCertificate(robust={self.robust}, holds={self.holds}, "
            f"margin={margin}, epsilon={self.epsilon:.6g})"
        )


# ----------------------------------------------------------------------
# Robust verification (the engine's run_verify hook)
# ----------------------------------------------------------------------
def _reachability_form(chain: DTMC, formula):
    """``(targets, avoid, kind)`` for the supported P/R fragment.

    ``avoid`` is the ``¬φ1 ∧ ¬φ2`` region of a ``P ⋈ b [φ1 U φ2]``
    formula — made absorbing before robust VI so until semantics are
    exact, not approximated by plain reachability.
    """
    from repro.checking.parametric import label_satisfaction_set

    if isinstance(formula, ProbabilisticOperator):
        path = formula.path
        if not isinstance(path, Until) or path.step_bound is not None:
            raise TypeError("robust verification supports unbounded until")
        targets = set(
            label_satisfaction_set(chain.states, chain.labels, path.right)
        )
        avoid = set()
        if not isinstance(path.left, TrueFormula):
            left = set(
                label_satisfaction_set(chain.states, chain.labels, path.left)
            )
            avoid = set(chain.states) - left - targets
        return targets, avoid, "probability"
    if isinstance(formula, RewardOperator):
        targets = set(
            label_satisfaction_set(
                chain.states, chain.labels, formula.path.right
            )
        )
        return targets, set(), "reward"
    raise TypeError("robust verification expects a top-level P or R operator")


def _with_absorbing(interval_chain: IntervalDTMC, absorbing) -> IntervalDTMC:
    """A copy of the interval chain with the given states made absorbing."""
    intervals = {
        state: ({state: (1.0, 1.0)} if state in absorbing else dict(row))
        for state, row in interval_chain.intervals.items()
    }
    return IntervalDTMC(
        states=interval_chain.states,
        intervals=intervals,
        initial_state=interval_chain.initial_state,
        labels=interval_chain.labels,
        state_rewards=interval_chain.state_rewards,
    )


def _nominal_fallback(
    artifact: DTMC,
    formula,
    epsilon: float,
    reason: str,
    vi_iterations: int,
    engine: str,
    cache,
) -> RobustCertificate:
    """The bottom rung of the ladder: nominal verdict, ``robust=False``."""
    nominal = cached_check(artifact, formula, engine=engine, cache=cache)
    maximise = formula.comparison in ("<", "<=")
    margin = None
    if nominal.value is not None:
        margin = (
            formula.bound - nominal.value
            if maximise
            else nominal.value - formula.bound
        )
    return RobustCertificate(
        epsilon=epsilon,
        robust=False,
        holds=nominal.holds,
        value=nominal.value,
        bound=formula.bound,
        comparison=formula.comparison,
        margin=margin,
        vi_iterations=vi_iterations,
        converged=False,
        fallback_reason=reason,
    )


def robust_verify(
    artifact: DTMC,
    formula,
    epsilon: float,
    vi_max_iterations: Optional[int] = None,
    vi_tolerance: Optional[float] = None,
    engine: str = "sparse",
    cache=None,
    want_witness: bool = True,
) -> RobustCertificate:
    """Verify ``formula`` against every chain in the ±ε ball.

    Runs robust (adversarial-nature) value iteration on
    ``IntervalDTMC.from_dtmc(artifact, epsilon)`` — the adversary
    maximises the checked quantity for upper-bound comparisons and
    minimises it for lower bounds, so ``holds`` quantifies over the
    *whole* uncertainty set.  Degrades per the fallback ladder: an
    unsupported formula, a capped iteration or a divergent sweep drop
    to the exact nominal check with ``robust=False`` — never a silent
    pass, never an exception for these causes.
    """
    if not isinstance(artifact, DTMC):
        raise TypeError("robust verification needs a DTMC artifact")
    try:
        targets, avoid, kind = _reachability_form(artifact, formula)
    except TypeError:
        return _nominal_fallback(
            artifact, formula, epsilon, "unsupported-formula", 0, engine, cache
        )
    interval_chain = IntervalDTMC.from_dtmc(artifact, epsilon)
    if avoid:
        interval_chain = _with_absorbing(interval_chain, avoid)
    maximise = formula.comparison in ("<", "<=")
    if kind == "probability":
        values, report = interval_chain.reachability_values_report(
            targets,
            maximise,
            max_iterations=vi_max_iterations,
            tolerance=vi_tolerance,
        )
    else:
        values, report = interval_chain.expected_reward_values_report(
            targets,
            maximise,
            max_iterations=vi_max_iterations,
            tolerance=vi_tolerance,
        )
    if not report.converged:
        reason = "vi-diverged" if report.diverged else "vi-iteration-cap"
        return _nominal_fallback(
            artifact,
            formula,
            epsilon,
            reason,
            report.iterations,
            engine,
            cache,
        )
    value = values[interval_chain.initial_state]
    holds = check_comparison(formula.comparison, value, formula.bound)
    margin = formula.bound - value if maximise else value - formula.bound
    witness = None
    if want_witness and not holds:
        witness = interval_chain.extremal_chain(values, maximise)
    return RobustCertificate(
        epsilon=epsilon,
        robust=True,
        holds=holds,
        value=value,
        bound=formula.bound,
        comparison=formula.comparison,
        margin=margin,
        vi_iterations=report.iterations,
        converged=True,
        witness=witness,
    )


# ----------------------------------------------------------------------
# Result
# ----------------------------------------------------------------------
class RobustRepairResult(RepairResult):
    """Outcome of a robust repair attempt.

    Carries the shared :class:`~repro.repair.RepairResult` fields plus:

    Attributes
    ----------
    robust:
        ``True`` iff the final verdict came from converged robust value
        iteration over the full interval set (``False`` marks the
        annotated nominal fallback — or an infeasible problem where no
        artifact existed to certify).
    epsilon:
        Half-width of the uncertainty ball the repair was certified
        against.
    certificate:
        The final :class:`RobustCertificate` (``None`` when no check
        ran, e.g. immediately-infeasible problems).
    repaired_model:
        The repaired chain (the original when already robust, ``None``
        when infeasible).
    witness:
        Nature's extremal member chain when robust verification failed.
    outer_iterations:
        Constraint-tightening rounds actually solved.
    vi_iterations:
        Total robust-VI sweeps across pre-check and every round.
    perturbation_bound:
        Proposition 1's ε-bisimulation bound from the wrapped flavour
        (0 when it defines none).
    """

    flavor = "robust"

    def __init__(
        self,
        status: str,
        assignment: Optional[Mapping[str, float]] = None,
        objective_value: float = 0.0,
        verified: bool = False,
        robust: bool = False,
        epsilon: float = 0.0,
        certificate: Optional[RobustCertificate] = None,
        repaired_model: Optional[DTMC] = None,
        witness: Optional[DTMC] = None,
        outer_iterations: int = 0,
        vi_iterations: int = 0,
        perturbation_bound: float = 0.0,
        message: str = "",
        solver_stats: Optional[Mapping[str, int]] = None,
    ):
        super().__init__(
            status=status,
            assignment=assignment,
            objective_value=objective_value,
            verified=verified,
            message=message,
            solver_stats=solver_stats,
        )
        self.robust = bool(robust)
        self.epsilon = float(epsilon)
        self.certificate = certificate
        self.repaired_model = repaired_model
        self.witness = witness
        self.outer_iterations = int(outer_iterations)
        self.vi_iterations = int(vi_iterations)
        self.perturbation_bound = float(perturbation_bound)

    def extra_payload(self) -> Dict:
        from repro.io.json_io import model_to_payload

        return {
            "robust": self.robust,
            "epsilon": self.epsilon,
            "outer_iterations": self.outer_iterations,
            "vi_iterations": self.vi_iterations,
            "perturbation_bound": self.perturbation_bound,
            "certificate": (
                None if self.certificate is None else self.certificate.to_dict()
            ),
            "repaired_model": (
                None
                if self.repaired_model is None
                else model_to_payload(self.repaired_model)
            ),
            "witness": (
                None if self.witness is None else model_to_payload(self.witness)
            ),
        }

    @classmethod
    def _from_payload(cls, payload: Mapping) -> "RobustRepairResult":
        from repro.io.json_io import model_from_payload

        certificate = payload.get("certificate")
        repaired = payload.get("repaired_model")
        witness = payload.get("witness")
        return cls(
            status=payload["status"],
            assignment=payload.get("assignment", {}),
            objective_value=payload.get("objective_value", 0.0),
            verified=payload.get("verified", False),
            robust=payload.get("robust", False),
            epsilon=payload.get("epsilon", 0.0),
            certificate=(
                None
                if certificate is None
                else RobustCertificate.from_dict(certificate)
            ),
            repaired_model=(
                None if repaired is None else model_from_payload(repaired)
            ),
            witness=None if witness is None else model_from_payload(witness),
            outer_iterations=payload.get("outer_iterations", 0),
            vi_iterations=payload.get("vi_iterations", 0),
            perturbation_bound=payload.get("perturbation_bound", 0.0),
            message=payload.get("message", ""),
            solver_stats=payload.get("solver_stats", {}),
        )

    def _repr_extra(self) -> str:
        return f"robust={self.robust}, epsilon={self.epsilon:.6g}"

    def describe(self) -> str:
        margin = (
            "n/a"
            if self.certificate is None or self.certificate.margin is None
            else f"{self.certificate.margin:.6g}"
        )
        return (
            f"status={self.status}, robust={self.robust}, margin={margin}"
        )


# ----------------------------------------------------------------------
# The builder
# ----------------------------------------------------------------------
class RobustRepair:
    """Wrap a repair builder so its result is certified over an ε-ball.

    ``base`` is any flavour builder exposing ``.formula`` and
    ``.problem()`` whose instantiated artifact is a chain — in this
    codebase :class:`~repro.core.model_repair.ModelRepair` and
    :class:`~repro.core.data_repair.DataRepair`.  ``epsilon`` is the
    half-width of the interval uncertainty ball the repaired model must
    survive.

    Examples
    --------
    >>> from repro.casestudies import wsn
    >>> robust = RobustRepair(wsn.model_repair_problem(60), epsilon=0.01)
    >>> result = robust.repair()  # doctest: +SKIP
    """

    def __init__(
        self,
        base,
        epsilon: float = DEFAULT_EPSILON,
        max_outer_iterations: int = DEFAULT_MAX_OUTER_ITERATIONS,
        vi_max_iterations: int = DEFAULT_VI_MAX_ITERATIONS,
        vi_tolerance: Optional[float] = None,
        tighten_safety: float = DEFAULT_TIGHTEN_SAFETY,
    ):
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        if max_outer_iterations < 1:
            raise ValueError("need at least one outer iteration")
        if not hasattr(base, "problem") or getattr(base, "formula", None) is None:
            raise TypeError(
                "RobustRepair wraps a builder with .problem() and .formula "
                "(e.g. ModelRepair or DataRepair)"
            )
        self.base = base
        self.epsilon = float(epsilon)
        self.max_outer_iterations = int(max_outer_iterations)
        self.vi_max_iterations = vi_max_iterations
        self.vi_tolerance = vi_tolerance
        self.tighten_safety = float(tighten_safety)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def for_chain(
        chain: DTMC,
        formula,
        epsilon: float = DEFAULT_EPSILON,
        controllable_states=None,
        max_perturbation: Optional[float] = None,
        cost="frobenius",
        engine: str = "sparse",
        **robust_options,
    ) -> "RobustRepair":
        """Edge-wise robust model repair (mirrors ``ModelRepair.for_chain``)."""
        from repro.core.model_repair import ModelRepair

        base = ModelRepair.for_chain(
            chain,
            formula,
            controllable_states=controllable_states,
            max_perturbation=max_perturbation,
            cost=cost,
            engine=engine,
        )
        return RobustRepair(base, epsilon=epsilon, **robust_options)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _verify_hook(self, holder: Dict) -> "callable":
        """A run_verify replacement: robust VI against the *original*
        formula, certificate side-channelled through ``holder``."""
        engine = getattr(self.base, "engine", "sparse")
        cache = getattr(self.base, "cache", None)

        def verify(artifact) -> bool:
            certificate = robust_verify(
                artifact,
                self.base.formula,
                self.epsilon,
                vi_max_iterations=self.vi_max_iterations,
                vi_tolerance=self.vi_tolerance,
                engine=engine,
                cache=cache,
            )
            holder["certificate"] = certificate
            return certificate.holds

        return verify

    def _tightened_formula(self, slack: float):
        """The original formula with its bound tightened by ``slack``."""
        formula = self.base.formula
        direction = -1.0 if formula.comparison in ("<", "<=") else 1.0
        bound = formula.bound + direction * slack
        if isinstance(formula, ProbabilisticOperator):
            bound = min(1.0, max(0.0, bound))
            return ProbabilisticOperator(formula.comparison, bound, formula.path)
        if isinstance(formula, RewardOperator):
            return RewardOperator(
                formula.comparison, bound, formula.path, formula.label
            )
        raise TypeError("robust repair expects a top-level P or R operator")

    def _tightened_problem(self, slack: float):
        if slack <= 0.0:
            builder = self.base
        else:
            # The flavour builders read ``self.formula`` when building
            # their problem, so a shallow copy with a tightened formula
            # yields the tightened constraint set — elimination included.
            builder = copy.copy(self.base)
            builder.formula = self._tightened_formula(slack)
        problem = builder.problem()
        # The robust pre-check already ran (and failed) on the original
        # artifact; the engine's nominal short-circuit must not let a
        # nominally-satisfying-but-not-robust original skip the solve.
        problem.check = lambda: False
        return problem

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def repair(
        self, extra_starts: int = 8, seed: int = 0
    ) -> RobustRepairResult:
        """Robust pre-check → (solve → robust verify → tighten)* loop."""
        base_problem = self.base.problem()
        total_vi = 0
        pre_certificate = None
        if isinstance(base_problem.original, DTMC):
            engine = getattr(self.base, "engine", "sparse")
            cache = getattr(self.base, "cache", None)
            pre_certificate = robust_verify(
                base_problem.original,
                self.base.formula,
                self.epsilon,
                vi_max_iterations=self.vi_max_iterations,
                vi_tolerance=self.vi_tolerance,
                engine=engine,
                cache=cache,
            )
            total_vi += pre_certificate.vi_iterations
            if pre_certificate.holds:
                robust = pre_certificate.robust
                message = (
                    "original model already satisfies the property "
                    + (
                        f"robustly (±{self.epsilon:g})"
                        if robust
                        else "nominally (robust check fell back: "
                        f"{pre_certificate.fallback_reason})"
                    )
                )
                return RobustRepairResult(
                    status="already_satisfied",
                    assignment=base_problem.initial_assignment(),
                    objective_value=0.0,
                    verified=True,
                    robust=robust,
                    epsilon=self.epsilon,
                    certificate=pre_certificate,
                    repaired_model=base_problem.original,
                    outer_iterations=0,
                    vi_iterations=total_vi,
                    message=message,
                )

        solver_totals: Dict[str, int] = {}
        slack = 0.0
        feasible_slack = 0.0
        infeasible_slack = None
        best = None  # (outcome, certificate) of the last non-robust repair
        outer = 0
        while outer < self.max_outer_iterations:
            outer += 1
            problem = self._tightened_problem(slack)
            holder: Dict = {}
            problem.verify = self._verify_hook(holder)
            outcome = solve_repair(problem, extra_starts=extra_starts, seed=seed)
            for key, value in outcome.solver_stats.items():
                solver_totals[key] = solver_totals.get(key, 0) + int(value)
            if outcome.status == "infeasible":
                if best is None:
                    return RobustRepairResult(
                        status="infeasible",
                        assignment=outcome.assignment,
                        objective_value=outcome.objective_value,
                        verified=False,
                        robust=False,
                        epsilon=self.epsilon,
                        certificate=pre_certificate,
                        outer_iterations=outer,
                        vi_iterations=total_vi,
                        message=outcome.message,
                        solver_stats=solver_totals,
                    )
                # Tightening overshot the feasible region: back off
                # toward the largest slack that still solved.
                infeasible_slack = slack
                slack = 0.5 * (feasible_slack + infeasible_slack)
                continue
            certificate = holder.get("certificate")
            if certificate is None:
                # The engine only skips run_verify when instantiate
                # produced no artifact; treat as a degraded outcome.
                return RobustRepairResult(
                    status=outcome.status,
                    assignment=outcome.assignment,
                    objective_value=outcome.objective_value,
                    verified=outcome.verified,
                    robust=False,
                    epsilon=self.epsilon,
                    outer_iterations=outer,
                    vi_iterations=total_vi,
                    perturbation_bound=outcome.epsilon,
                    message=outcome.message or "no artifact to certify",
                    solver_stats=solver_totals,
                )
            total_vi += certificate.vi_iterations
            if not certificate.robust:
                # Fallback ladder bottom: nominal verdict, annotated.
                return RobustRepairResult(
                    status="repaired",
                    assignment=outcome.assignment,
                    objective_value=outcome.objective_value,
                    verified=certificate.holds,
                    robust=False,
                    epsilon=self.epsilon,
                    certificate=certificate,
                    repaired_model=(
                        outcome.artifact
                        if isinstance(outcome.artifact, DTMC)
                        else None
                    ),
                    outer_iterations=outer,
                    vi_iterations=total_vi,
                    perturbation_bound=outcome.epsilon,
                    message=(
                        "robust verification degraded to the nominal check "
                        f"({certificate.fallback_reason})"
                    ),
                    solver_stats=solver_totals,
                )
            if certificate.holds:
                rounds = (
                    "" if outer == 1 else f" after {outer - 1} tightening round(s)"
                )
                return RobustRepairResult(
                    status="repaired",
                    assignment=outcome.assignment,
                    objective_value=outcome.objective_value,
                    verified=True,
                    robust=True,
                    epsilon=self.epsilon,
                    certificate=certificate,
                    repaired_model=(
                        outcome.artifact
                        if isinstance(outcome.artifact, DTMC)
                        else None
                    ),
                    outer_iterations=outer,
                    vi_iterations=total_vi,
                    perturbation_bound=outcome.epsilon,
                    message=f"robustly verified at ±{self.epsilon:g}{rounds}",
                    solver_stats=solver_totals,
                )
            best = (outcome, certificate)
            feasible_slack = slack
            shortfall = max(0.0, -(certificate.margin or 0.0))
            # Always make progress, even when the margin rounds to zero.
            slack += shortfall * self.tighten_safety + 1e-9
            if infeasible_slack is not None:
                # Stay inside the bracket a previous overshoot revealed.
                slack = min(slack, 0.5 * (feasible_slack + infeasible_slack))

        outcome, certificate = best
        message = (
            f"robust verification still failing after "
            f"{self.max_outer_iterations} tightening round(s) "
            f"(margin={certificate.margin:.6g})"
        )
        return self._failed_result(
            outcome, certificate, outer, total_vi, solver_totals, message
        )

    def _failed_result(
        self, outcome, certificate, outer, total_vi, solver_totals, message
    ) -> RobustRepairResult:
        """A repaired-but-not-robust result carrying the witness."""
        return RobustRepairResult(
            status="repaired",
            assignment=outcome.assignment,
            objective_value=outcome.objective_value,
            verified=False,
            robust=True,
            epsilon=self.epsilon,
            certificate=certificate,
            repaired_model=(
                outcome.artifact if isinstance(outcome.artifact, DTMC) else None
            ),
            witness=certificate.witness,
            outer_iterations=outer,
            vi_iterations=total_vi,
            perturbation_bound=outcome.epsilon,
            message=message,
            solver_stats=solver_totals,
        )
