"""Qualitative graph precomputations for PCTL model checking.

These are the standard prob0/prob1 algorithms (Baier & Katoen, ch. 10):
before any numeric solve, the checker identifies the states whose
until-probability is exactly 0 or exactly 1 purely from the transition
graph.  This both shrinks the linear systems and makes the numeric part
well-conditioned.

Every function takes an ``engine`` argument:

``"sparse"`` (default)
    Vectorised fixpoints over the CSR matrices of
    :mod:`repro.checking.matrix` — one sparse mat-vec per frontier
    level instead of a Python dict walk per state.
``"dense"``
    The original dictionary-based reference implementation, kept for
    differential testing and for models too small to amortise matrix
    extraction.

For MDPs the qualitative sets come in existential/universal flavours:

========  =========================================
set       meaning
========  =========================================
prob0A    Pmax(φ1 U φ2) = 0   (no scheduler can reach)
prob0E    Pmin(φ1 U φ2) = 0   (some scheduler avoids)
prob1E    Pmax(φ1 U φ2) = 1   (some scheduler surely reaches)
prob1A    Pmin(φ1 U φ2) = 1   (every scheduler surely reaches)
========  =========================================
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

import numpy as np
from scipy.sparse import csgraph

from repro.checking.matrix import get_dtmc_matrix, get_mdp_matrix, reach_backward
from repro.mdp.model import DTMC, MDP

State = Hashable

_ENGINES = ("sparse", "dense")


def _check_engine(engine: str) -> None:
    if engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {_ENGINES}")


def _predecessor_map(chain: DTMC) -> Dict[State, List[State]]:
    preds: Dict[State, List[State]] = {s: [] for s in chain.states}
    for source, row in chain.transitions.items():
        for target in row:
            preds[target].append(source)
    return preds


def backward_reachable(
    chain: DTMC,
    targets: Iterable[State],
    through: Optional[Set[State]] = None,
    engine: str = "sparse",
) -> FrozenSet[State]:
    """States with a path to ``targets`` whose interior stays in ``through``.

    ``through`` defaults to all states.  Target states themselves are
    always included.
    """
    _check_engine(engine)
    if engine == "sparse":
        matrix = get_dtmc_matrix(chain)
        target_mask = matrix.mask(targets)
        allowed = None if through is None else matrix.mask(through)
        return matrix.unmask(reach_backward(matrix.P, target_mask, allowed))
    allowed = set(chain.states) if through is None else set(through)
    preds = _predecessor_map(chain)
    reached = set(targets)
    frontier = list(reached)
    while frontier:
        state = frontier.pop()
        for pred in preds[state]:
            if pred not in reached and pred in allowed:
                reached.add(pred)
                frontier.append(pred)
    return frozenset(reached)


def prob0_states(
    chain: DTMC,
    targets: Iterable[State],
    allowed: Optional[Set[State]] = None,
    engine: str = "sparse",
) -> FrozenSet[State]:
    """States with ``Pr(allowed U targets) = 0``.

    With ``allowed=None`` this is plain reachability ``Pr(F targets)=0``.
    """
    _check_engine(engine)
    if engine == "sparse":
        matrix = get_dtmc_matrix(chain)
        target_mask = matrix.mask(targets)
        allowed_mask = None if allowed is None else matrix.mask(allowed)
        can_reach = reach_backward(matrix.P, target_mask, allowed_mask)
        return matrix.unmask(~can_reach)
    targets = set(targets)
    can_reach = backward_reachable(chain, targets, through=allowed, engine=engine)
    return frozenset(set(chain.states) - can_reach)


def prob1_states(
    chain: DTMC,
    targets: Iterable[State],
    allowed: Optional[Set[State]] = None,
    engine: str = "sparse",
) -> FrozenSet[State]:
    """States with ``Pr(allowed U targets) = 1``.

    A state fails to reach with probability 1 exactly when it can reach
    (staying in ``allowed`` and avoiding ``targets``) a state whose
    until-probability is 0.
    """
    _check_engine(engine)
    if engine == "sparse":
        matrix = get_dtmc_matrix(chain)
        target_mask = matrix.mask(targets)
        allowed_mask = (
            np.ones(matrix.num_states, dtype=bool)
            if allowed is None
            else matrix.mask(allowed)
        )
        zero = ~reach_backward(
            matrix.P, target_mask, None if allowed is None else allowed_mask
        )
        interior = allowed_mask & ~target_mask
        can_fail = reach_backward(matrix.P, zero, interior)
        return matrix.unmask(~can_fail)
    targets = set(targets)
    zero = prob0_states(chain, targets, allowed, engine=engine)
    interior = (set(chain.states) if allowed is None else set(allowed)) - targets
    # Backward closure of the zero set through interior states.
    can_fail = backward_reachable(chain, zero, through=interior, engine=engine)
    return frozenset(set(chain.states) - can_fail)


# ----------------------------------------------------------------------
# MDP qualitative sets
# ----------------------------------------------------------------------
def _mdp_interior_mask(matrix, targets, allowed) -> Tuple[np.ndarray, np.ndarray]:
    target_mask = matrix.mask(targets)
    allowed_mask = (
        np.ones(matrix.num_states, dtype=bool)
        if allowed is None
        else matrix.mask(allowed)
    )
    return target_mask, allowed_mask & ~target_mask


def _grow(seed: np.ndarray, step) -> np.ndarray:
    """Least fixpoint of ``seed ∪ step(current)``."""
    current = seed.copy()
    while True:
        grown = current | step(current)
        if np.array_equal(grown, current):
            return current
        current = grown


def prob0A_states(
    mdp: MDP,
    targets: Iterable[State],
    allowed: Optional[Set[State]] = None,
    engine: str = "sparse",
) -> FrozenSet[State]:
    """States where no scheduler reaches ``targets`` (Pmax = 0)."""
    _check_engine(engine)
    if engine == "sparse":
        matrix = get_mdp_matrix(mdp)
        target_mask, interior = _mdp_interior_mask(matrix, targets, allowed)
        reached = _grow(
            target_mask,
            lambda cur: matrix.any_choice((matrix.P @ cur.astype(np.float64)) > 0)
            & interior,
        )
        return matrix.unmask(~reached)
    targets = set(targets)
    interior = (set(mdp.states) if allowed is None else set(allowed)) - targets
    reached: Set[State] = set(targets)
    changed = True
    while changed:
        changed = False
        for state in mdp.states:
            if state in reached or state not in interior:
                continue
            for action in mdp.actions(state):
                if any(t in reached for t in mdp.successors(state, action)):
                    reached.add(state)
                    changed = True
                    break
    return frozenset(set(mdp.states) - reached)


def prob0E_states(
    mdp: MDP,
    targets: Iterable[State],
    allowed: Optional[Set[State]] = None,
    engine: str = "sparse",
) -> FrozenSet[State]:
    """States where some scheduler avoids ``targets`` forever (Pmin = 0).

    Computed as the complement of the least fixpoint of states forced
    (under every action) to hit the growing set with positive
    probability.
    """
    _check_engine(engine)
    if engine == "sparse":
        matrix = get_mdp_matrix(mdp)
        target_mask, interior = _mdp_interior_mask(matrix, targets, allowed)
        positive = _grow(
            target_mask,
            lambda cur: matrix.all_choices((matrix.P @ cur.astype(np.float64)) > 0)
            & interior,
        )
        return matrix.unmask(~positive)
    targets = set(targets)
    interior = (set(mdp.states) if allowed is None else set(allowed)) - targets
    positive: Set[State] = set(targets)
    changed = True
    while changed:
        changed = False
        for state in mdp.states:
            if state in positive or state not in interior:
                continue
            if all(
                any(t in positive for t in mdp.successors(state, action))
                for action in mdp.actions(state)
            ):
                positive.add(state)
                changed = True
    return frozenset(set(mdp.states) - positive)


def prob1E_states(
    mdp: MDP,
    targets: Iterable[State],
    allowed: Optional[Set[State]] = None,
    engine: str = "sparse",
) -> FrozenSet[State]:
    """States where some scheduler reaches ``targets`` surely (Pmax = 1).

    De Alfaro's nested fixpoint: the outer loop shrinks a candidate set
    ``X``; the inner loop grows, from the targets, the states having an
    action that stays inside ``X`` and makes progress toward the current
    inner set.
    """
    _check_engine(engine)
    if engine == "sparse":
        matrix = get_mdp_matrix(mdp)
        target_mask, interior = _mdp_interior_mask(matrix, targets, allowed)
        x = np.ones(matrix.num_states, dtype=bool)
        while True:
            # Choices all of whose successors stay inside X (X-invariant).
            stays = ~((matrix.P @ (~x).astype(np.float64)) > 0)
            y = _grow(
                target_mask,
                lambda cur: matrix.any_choice(
                    stays & ((matrix.P @ cur.astype(np.float64)) > 0)
                )
                & interior,
            )
            if np.array_equal(y, x):
                return matrix.unmask(x)
            x = y
    targets = set(targets)
    interior = (set(mdp.states) if allowed is None else set(allowed)) - targets
    x: Set[State] = set(mdp.states)
    while True:
        y: Set[State] = set(targets)
        changed = True
        while changed:
            changed = False
            for state in mdp.states:
                if state in y or state not in interior:
                    continue
                for action in mdp.actions(state):
                    successors = mdp.successors(state, action)
                    if all(t in x for t in successors) and any(
                        t in y for t in successors
                    ):
                        y.add(state)
                        changed = True
                        break
        if y == x:
            return frozenset(x)
        x = y


def prob1A_states(
    mdp: MDP,
    targets: Iterable[State],
    allowed: Optional[Set[State]] = None,
    engine: str = "sparse",
) -> FrozenSet[State]:
    """States where every scheduler reaches ``targets`` surely (Pmin = 1).

    ``Pmin(s) < 1`` exactly when some scheduler reaches, with positive
    probability and avoiding the targets, a state from which some
    scheduler avoids the targets forever (a ``prob0E`` state).
    """
    _check_engine(engine)
    if engine == "sparse":
        matrix = get_mdp_matrix(mdp)
        _, interior = _mdp_interior_mask(matrix, targets, allowed)
        escape = matrix.mask(prob0E_states(mdp, targets, allowed, engine=engine))
        can_escape = _grow(
            escape,
            lambda cur: matrix.any_choice((matrix.P @ cur.astype(np.float64)) > 0)
            & interior,
        )
        return matrix.unmask(~can_escape)
    targets = set(targets)
    interior = (set(mdp.states) if allowed is None else set(allowed)) - targets
    escape = set(prob0E_states(mdp, targets, allowed, engine=engine))
    # Existential backward closure of the escape set through interior states.
    can_escape: Set[State] = set(escape)
    changed = True
    while changed:
        changed = False
        for state in mdp.states:
            if state in can_escape or state not in interior:
                continue
            for action in mdp.actions(state):
                if any(t in can_escape for t in mdp.successors(state, action)):
                    can_escape.add(state)
                    changed = True
                    break
    return frozenset(set(mdp.states) - can_escape)


# ----------------------------------------------------------------------
# Strongly connected components
# ----------------------------------------------------------------------
def strongly_connected_components(
    chain: DTMC, engine: str = "sparse"
) -> List[FrozenSet[State]]:
    """SCC decomposition of a chain's transition graph.

    Returned in reverse topological order (every edge leaving an SCC
    points to an earlier-listed SCC), which is what the steady-state
    machinery wants.  The sparse engine uses
    ``scipy.sparse.csgraph.connected_components`` plus a Kahn sort of
    the condensation; the dense engine is an iterative Tarjan — no
    recursion limits in either case.
    """
    _check_engine(engine)
    if engine == "sparse":
        return _sparse_sccs(chain)
    index_counter = 0
    indices: Dict[State, int] = {}
    lowlinks: Dict[State, int] = {}
    on_stack: Dict[State, bool] = {}
    stack: List[State] = []
    components: List[FrozenSet[State]] = []

    for root in chain.states:
        if root in indices:
            continue
        work: List[Tuple[State, Iterator[State]]] = [
            (root, iter(chain.successors(root)))
        ]
        indices[root] = lowlinks[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            state, successors = work[-1]
            advanced = False
            for target in successors:
                if target not in indices:
                    indices[target] = lowlinks[target] = index_counter
                    index_counter += 1
                    stack.append(target)
                    on_stack[target] = True
                    work.append((target, iter(chain.successors(target))))
                    advanced = True
                    break
                if on_stack.get(target):
                    lowlinks[state] = min(lowlinks[state], indices[target])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[state])
            if lowlinks[state] == indices[state]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == state:
                        break
                components.append(frozenset(component))
    return components


def _sparse_sccs(chain: DTMC) -> List[FrozenSet[State]]:
    matrix = get_dtmc_matrix(chain)
    num_components, labels = csgraph.connected_components(
        matrix.P, directed=True, connection="strong"
    )
    members: List[List[State]] = [[] for _ in range(num_components)]
    for i, label in enumerate(labels):
        members[label].append(matrix.states[i])
    # Kahn topological sort of the condensation, then reversed, restores
    # the reverse-topological contract (csgraph's label order does not
    # guarantee it).
    coo = matrix.P.tocoo()
    source_labels = labels[coo.row]
    target_labels = labels[coo.col]
    cross = source_labels != target_labels
    edges = set(zip(source_labels[cross].tolist(), target_labels[cross].tolist()))
    successors: List[List[int]] = [[] for _ in range(num_components)]
    in_degree = [0] * num_components
    for source, target in sorted(edges):
        successors[source].append(target)
        in_degree[target] += 1
    queue = [c for c in range(num_components) if in_degree[c] == 0]
    topological: List[int] = []
    while queue:
        component = queue.pop()
        topological.append(component)
        for target in successors[component]:
            in_degree[target] -= 1
            if in_degree[target] == 0:
                queue.append(target)
    return [frozenset(members[c]) for c in reversed(topological)]


def bottom_strongly_connected_components(
    chain: DTMC, engine: str = "sparse"
) -> List[FrozenSet[State]]:
    """The chain's bottom SCCs (no edge leaves them).

    A finite chain's long-run behaviour is entirely determined by which
    BSCC it is absorbed into and the stationary distribution within it.
    """
    bottoms = []
    for component in strongly_connected_components(chain, engine=engine):
        closed = all(
            target in component
            for state in component
            for target in chain.successors(state)
        )
        if closed:
            bottoms.append(component)
    return bottoms
