"""Qualitative graph precomputations for PCTL model checking.

These are the standard prob0/prob1 algorithms (Baier & Katoen, ch. 10):
before any numeric solve, the checker identifies the states whose
until-probability is exactly 0 or exactly 1 purely from the transition
graph.  This both shrinks the linear systems and makes the numeric part
well-conditioned.

For MDPs the qualitative sets come in existential/universal flavours:

========  =========================================
set       meaning
========  =========================================
prob0A    Pmax(φ1 U φ2) = 0   (no scheduler can reach)
prob0E    Pmin(φ1 U φ2) = 0   (some scheduler avoids)
prob1E    Pmax(φ1 U φ2) = 1   (some scheduler surely reaches)
prob1A    Pmin(φ1 U φ2) = 1   (every scheduler surely reaches)
========  =========================================
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from repro.mdp.model import DTMC, MDP

State = Hashable


def _predecessor_map(chain: DTMC) -> Dict[State, List[State]]:
    preds: Dict[State, List[State]] = {s: [] for s in chain.states}
    for source, row in chain.transitions.items():
        for target in row:
            preds[target].append(source)
    return preds


def backward_reachable(
    chain: DTMC,
    targets: Iterable[State],
    through: Optional[Set[State]] = None,
) -> FrozenSet[State]:
    """States with a path to ``targets`` whose interior stays in ``through``.

    ``through`` defaults to all states.  Target states themselves are
    always included.
    """
    allowed = set(chain.states) if through is None else set(through)
    preds = _predecessor_map(chain)
    reached = set(targets)
    frontier = list(reached)
    while frontier:
        state = frontier.pop()
        for pred in preds[state]:
            if pred not in reached and pred in allowed:
                reached.add(pred)
                frontier.append(pred)
    return frozenset(reached)


def prob0_states(
    chain: DTMC,
    targets: Iterable[State],
    allowed: Optional[Set[State]] = None,
) -> FrozenSet[State]:
    """States with ``Pr(allowed U targets) = 0``.

    With ``allowed=None`` this is plain reachability ``Pr(F targets)=0``.
    """
    targets = set(targets)
    can_reach = backward_reachable(chain, targets, through=allowed)
    return frozenset(set(chain.states) - can_reach)


def prob1_states(
    chain: DTMC,
    targets: Iterable[State],
    allowed: Optional[Set[State]] = None,
) -> FrozenSet[State]:
    """States with ``Pr(allowed U targets) = 1``.

    A state fails to reach with probability 1 exactly when it can reach
    (staying in ``allowed`` and avoiding ``targets``) a state whose
    until-probability is 0.
    """
    targets = set(targets)
    zero = prob0_states(chain, targets, allowed)
    interior = (set(chain.states) if allowed is None else set(allowed)) - targets
    # Backward closure of the zero set through interior states.
    can_fail = backward_reachable(chain, zero, through=interior)
    return frozenset(set(chain.states) - can_fail)


# ----------------------------------------------------------------------
# MDP qualitative sets
# ----------------------------------------------------------------------
def prob0A_states(
    mdp: MDP,
    targets: Iterable[State],
    allowed: Optional[Set[State]] = None,
) -> FrozenSet[State]:
    """States where no scheduler reaches ``targets`` (Pmax = 0)."""
    targets = set(targets)
    interior = (set(mdp.states) if allowed is None else set(allowed)) - targets
    reached: Set[State] = set(targets)
    changed = True
    while changed:
        changed = False
        for state in mdp.states:
            if state in reached or state not in interior:
                continue
            for action in mdp.actions(state):
                if any(t in reached for t in mdp.successors(state, action)):
                    reached.add(state)
                    changed = True
                    break
    return frozenset(set(mdp.states) - reached)


def prob0E_states(
    mdp: MDP,
    targets: Iterable[State],
    allowed: Optional[Set[State]] = None,
) -> FrozenSet[State]:
    """States where some scheduler avoids ``targets`` forever (Pmin = 0).

    Computed as the complement of the least fixpoint of states forced
    (under every action) to hit the growing set with positive
    probability.
    """
    targets = set(targets)
    interior = (set(mdp.states) if allowed is None else set(allowed)) - targets
    positive: Set[State] = set(targets)
    changed = True
    while changed:
        changed = False
        for state in mdp.states:
            if state in positive or state not in interior:
                continue
            if all(
                any(t in positive for t in mdp.successors(state, action))
                for action in mdp.actions(state)
            ):
                positive.add(state)
                changed = True
    return frozenset(set(mdp.states) - positive)


def prob1E_states(
    mdp: MDP,
    targets: Iterable[State],
    allowed: Optional[Set[State]] = None,
) -> FrozenSet[State]:
    """States where some scheduler reaches ``targets`` surely (Pmax = 1).

    De Alfaro's nested fixpoint: the outer loop shrinks a candidate set
    ``X``; the inner loop grows, from the targets, the states having an
    action that stays inside ``X`` and makes progress toward the current
    inner set.
    """
    targets = set(targets)
    interior = (set(mdp.states) if allowed is None else set(allowed)) - targets
    x: Set[State] = set(mdp.states)
    while True:
        y: Set[State] = set(targets)
        changed = True
        while changed:
            changed = False
            for state in mdp.states:
                if state in y or state not in interior:
                    continue
                for action in mdp.actions(state):
                    successors = mdp.successors(state, action)
                    if all(t in x for t in successors) and any(
                        t in y for t in successors
                    ):
                        y.add(state)
                        changed = True
                        break
        if y == x:
            return frozenset(x)
        x = y


def prob1A_states(
    mdp: MDP,
    targets: Iterable[State],
    allowed: Optional[Set[State]] = None,
) -> FrozenSet[State]:
    """States where every scheduler reaches ``targets`` surely (Pmin = 1).

    ``Pmin(s) < 1`` exactly when some scheduler reaches, with positive
    probability and avoiding the targets, a state from which some
    scheduler avoids the targets forever (a ``prob0E`` state).
    """
    targets = set(targets)
    interior = (set(mdp.states) if allowed is None else set(allowed)) - targets
    escape = set(prob0E_states(mdp, targets, allowed))
    # Existential backward closure of the escape set through interior states.
    can_escape: Set[State] = set(escape)
    changed = True
    while changed:
        changed = False
        for state in mdp.states:
            if state in can_escape or state not in interior:
                continue
            for action in mdp.actions(state):
                if any(t in can_escape for t in mdp.successors(state, action)):
                    can_escape.add(state)
                    changed = True
                    break
    return frozenset(set(mdp.states) - can_escape)


# ----------------------------------------------------------------------
# Strongly connected components
# ----------------------------------------------------------------------
def strongly_connected_components(chain: DTMC) -> List[FrozenSet[State]]:
    """Tarjan's SCC decomposition of a chain's transition graph.

    Returned in reverse topological order (every edge leaving an SCC
    points to an earlier-listed SCC), which is what the steady-state
    machinery wants.  Iterative implementation — no recursion limits.
    """
    index_counter = 0
    indices: Dict[State, int] = {}
    lowlinks: Dict[State, int] = {}
    on_stack: Dict[State, bool] = {}
    stack: List[State] = []
    components: List[FrozenSet[State]] = []

    for root in chain.states:
        if root in indices:
            continue
        work: List[Tuple[State, Iterator[State]]] = [
            (root, iter(chain.successors(root)))
        ]
        indices[root] = lowlinks[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            state, successors = work[-1]
            advanced = False
            for target in successors:
                if target not in indices:
                    indices[target] = lowlinks[target] = index_counter
                    index_counter += 1
                    stack.append(target)
                    on_stack[target] = True
                    work.append((target, iter(chain.successors(target))))
                    advanced = True
                    break
                if on_stack.get(target):
                    lowlinks[state] = min(lowlinks[state], indices[target])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[state])
            if lowlinks[state] == indices[state]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == state:
                        break
                components.append(frozenset(component))
    return components


def bottom_strongly_connected_components(chain: DTMC) -> List[FrozenSet[State]]:
    """The chain's bottom SCCs (no edge leaves them).

    A finite chain's long-run behaviour is entirely determined by which
    BSCC it is absorbed into and the stationary distribution within it.
    """
    bottoms = []
    for component in strongly_connected_components(chain):
        closed = all(
            target in component
            for state in component
            for target in chain.successors(state)
        )
        if closed:
            bottoms.append(component)
    return bottoms
