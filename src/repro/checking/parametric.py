"""Parametric model checking by state elimination.

This module plays the role PRISM's parametric engine plays in the paper
(Propositions 2 and 3): given a Markov chain whose transition
probabilities are *rational functions* of repair parameters, it computes

* the reachability probability ``Pr(φ1 U φ2)``, and
* the expected cumulative reward ``R [F φ]``,

as closed-form rational functions of the parameters.  Model Repair and
Data Repair then hand ``f(v) ⋈ b`` to the nonlinear optimiser.

Algorithm: Daws-style state elimination (also used by PARAM and Storm).
Working with a *sub-stochastic* matrix (mass that can never reach the
target is simply dropped), each non-initial, non-target state ``s`` is
eliminated by redirecting every ``u → s → v`` pair through

    p'(u, v) = p(u, v) + p(u, s) · p(s, v) / (1 − p(s, s))

and, for expected rewards, accumulating

    r'(u) = r(u) + p(u, s) · r(s) / (1 − p(s, s)).

The standard *graph-preserving* assumption applies: a transition's
rational function must be structurally nonzero and must stay positive on
the parameter region of interest (the repair formulations guarantee this
through their box constraints, Equation 6).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Mapping, Optional, Set, Union

from repro.logic.pctl import (
    And,
    AtomicProposition,
    Eventually,
    FalseFormula,
    Globally,
    Implies,
    Not,
    Or,
    ProbabilisticOperator,
    RewardOperator,
    StateFormula,
    TrueFormula,
    Until,
    check_comparison,
)
from repro.mdp.model import DTMC
from repro.symbolic import Polynomial, RationalFunction, bareiss_determinant

State = Hashable
Coefficient = Union[int, float, RationalFunction, Polynomial]

#: Count of symbolic reductions actually performed (state elimination or
#: fraction-free Gauss).  :class:`repro.checking.cache.CheckCache` reuse
#: is asserted against this counter: repeated repairs of an unchanged
#: (model, formula) pair must increment it exactly once.
_ANALYSIS_COUNTER = {"count": 0}


def analysis_count() -> int:
    """How many symbolic reductions have run in this process."""
    return _ANALYSIS_COUNTER["count"]


def _as_rational(value: Coefficient) -> RationalFunction:
    if isinstance(value, RationalFunction):
        return value
    if isinstance(value, Polynomial):
        return RationalFunction(value)
    return RationalFunction.constant(value)


def label_satisfaction_set(
    states: Iterable[State],
    labels: Mapping[State, frozenset],
    formula: StateFormula,
) -> FrozenSet[State]:
    """Satisfaction set of a label-only (non-probabilistic) formula.

    Parametric checking requires the path formula's endpoints to be
    boolean combinations of atomic propositions; nested ``P``/``R``
    operators raise ``TypeError``.
    """
    states = list(states)
    if isinstance(formula, TrueFormula):
        return frozenset(states)
    if isinstance(formula, FalseFormula):
        return frozenset()
    if isinstance(formula, AtomicProposition):
        return frozenset(
            s for s in states if formula.name in labels.get(s, frozenset())
        )
    if isinstance(formula, Not):
        return frozenset(states) - label_satisfaction_set(
            states, labels, formula.operand
        )
    if isinstance(formula, And):
        return label_satisfaction_set(
            states, labels, formula.left
        ) & label_satisfaction_set(states, labels, formula.right)
    if isinstance(formula, Or):
        return label_satisfaction_set(
            states, labels, formula.left
        ) | label_satisfaction_set(states, labels, formula.right)
    if isinstance(formula, Implies):
        return (
            frozenset(states) - label_satisfaction_set(states, labels, formula.left)
        ) | label_satisfaction_set(states, labels, formula.right)
    raise TypeError(
        f"parametric checking needs label-only sub-formulas, got {formula!r}"
    )


class ParametricDTMC:
    """A Markov chain whose transitions are rational functions.

    Parameters
    ----------
    states:
        State identifiers.
    transitions:
        ``{source: {target: coefficient}}`` where coefficients may be
        numbers, :class:`Polynomial` or :class:`RationalFunction`.
        Structural zeros are simply omitted.
    initial_state:
        Start state.
    labels:
        Atomic-proposition labelling.
    state_rewards:
        Optional symbolic (or numeric) state rewards.

    Examples
    --------
    >>> from repro.symbolic import Polynomial
    >>> p = Polynomial.variable("p")
    >>> pm = ParametricDTMC(
    ...     states=["a", "b"],
    ...     transitions={"a": {"b": p, "a": 1 - p}, "b": {"b": 1}},
    ...     initial_state="a",
    ...     labels={"b": {"done"}},
    ... )
    >>> f = pm.reachability_probability({"b"})
    >>> f.evaluate({"p": 0.3})
    Fraction(1, 1)
    """

    def __init__(
        self,
        states: Iterable[State],
        transitions: Mapping[State, Mapping[State, Coefficient]],
        initial_state: State,
        labels: Optional[Mapping[State, Iterable[str]]] = None,
        state_rewards: Optional[Mapping[State, Coefficient]] = None,
    ):
        self.states = list(states)
        if initial_state not in set(self.states):
            raise ValueError(f"unknown initial state {initial_state!r}")
        self.initial_state = initial_state
        self.transitions: Dict[State, Dict[State, RationalFunction]] = {}
        for source in self.states:
            row = transitions.get(source, {})
            symbolic_row = {}
            for target, value in row.items():
                if target not in set(self.states):
                    raise ValueError(f"unknown target state {target!r}")
                rational = _as_rational(value)
                if not rational.is_zero():
                    symbolic_row[target] = rational
            self.transitions[source] = symbolic_row
        self.labels: Dict[State, frozenset] = {
            s: frozenset((labels or {}).get(s, frozenset())) for s in self.states
        }
        self.state_rewards: Dict[State, RationalFunction] = {
            s: _as_rational((state_rewards or {}).get(s, 0)) for s in self.states
        }

    # ------------------------------------------------------------------
    # Constructors / conversion
    # ------------------------------------------------------------------
    @staticmethod
    def from_dtmc(chain: DTMC) -> "ParametricDTMC":
        """Lift a concrete chain to a (constant) parametric one."""
        return ParametricDTMC(
            states=chain.states,
            transitions={
                s: {t: p for t, p in row.items()}
                for s, row in chain.transitions.items()
            },
            initial_state=chain.initial_state,
            labels=chain.labels,
            state_rewards=chain.state_rewards,
        )

    def parameters(self) -> FrozenSet[str]:
        """All parameter names appearing anywhere in the model."""
        names: Set[str] = set()
        for row in self.transitions.values():
            for function in row.values():
                names |= function.variables()
        for function in self.state_rewards.values():
            names |= function.variables()
        return frozenset(names)

    def instantiate(self, assignment: Mapping[str, float]) -> DTMC:
        """Evaluate every function at ``assignment`` and build a DTMC.

        Raises :class:`~repro.mdp.ModelValidationError` if the assignment
        leaves the well-formed region (negative probabilities or rows not
        summing to 1).
        """
        transitions = {
            s: {t: float(f.evaluate(assignment)) for t, f in row.items()}
            for s, row in self.transitions.items()
        }
        rewards = {
            s: float(f.evaluate(assignment)) for s, f in self.state_rewards.items()
        }
        return DTMC(
            states=self.states,
            transitions=transitions,
            initial_state=self.initial_state,
            labels=self.labels,
            state_rewards=rewards,
        )

    # ------------------------------------------------------------------
    # Parametric analysis
    # ------------------------------------------------------------------
    def reachability_probability(
        self,
        targets: Iterable[State],
        allowed: Optional[Set[State]] = None,
        method: str = "gauss",
    ) -> RationalFunction:
        """``Pr_{s0}(allowed U targets)`` as a rational function.

        ``allowed`` defaults to all states (plain ``F targets``).

        Parameters
        ----------
        method:
            ``"gauss"`` (default) solves the reachability linear system
            by fraction-free Cramer's rule — intermediate polynomial
            degrees stay bounded by the state count, so it scales to
            denser models.  ``"eliminate"`` is classic Daws state
            elimination; equivalent output, but intermediate rational
            functions can blow up on dense graphs.
        """
        targets = set(targets)
        if self.initial_state in targets:
            return RationalFunction.one()
        matrix = self._restricted_matrix(targets, allowed)
        if matrix is None:
            return RationalFunction.zero()
        _ANALYSIS_COUNTER["count"] += 1
        if method == "gauss":
            rhs = {}
            for state, row in matrix.items():
                if state in targets:
                    continue
                mass = RationalFunction.zero()
                for target in targets:
                    if target in row:
                        mass = mass + row[target]
                rhs[state] = mass
            return self._cramer_solve(matrix, targets, rhs)
        if method != "eliminate":
            raise ValueError(f"unknown method {method!r}")
        rewards = {s: RationalFunction.zero() for s in matrix}
        matrix, rewards = self._eliminate(
            matrix, rewards, targets | {self.initial_state}
        )
        row = matrix[self.initial_state]
        numerator = RationalFunction.zero()
        for target in targets:
            if target in row:
                numerator = numerator + row[target]
        self_loop = row.get(self.initial_state, RationalFunction.zero())
        denominator = RationalFunction.one() - self_loop
        if denominator.is_zero():
            # The initial state's residual self-loop is structurally 1:
            # it is an absorbing non-target state, so no mass ever
            # reaches the targets (sub-stochastic semantics).
            return RationalFunction.zero()
        return numerator / denominator

    def bounded_reachability_probability(
        self,
        targets: Iterable[State],
        steps: int,
        allowed: Optional[Set[State]] = None,
    ) -> RationalFunction:
        """``Pr_{s0}(allowed U≤steps targets)`` as a rational function.

        Computed by ``steps`` symbolic vector-matrix iterations; the
        result's polynomial degree grows with ``steps``, so this is
        meant for modest bounds (the usual case for bounded-time
        properties).
        """
        targets = set(targets)
        if steps < 0:
            raise ValueError("step bound must be non-negative")
        allowed_set = (
            set(self.states) if allowed is None else set(allowed)
        ) - targets
        values: Dict[State, RationalFunction] = {
            s: (RationalFunction.one() if s in targets else RationalFunction.zero())
            for s in self.states
        }
        for _ in range(steps):
            updated: Dict[State, RationalFunction] = {}
            for state in self.states:
                if state in targets:
                    updated[state] = RationalFunction.one()
                elif state in allowed_set:
                    total = RationalFunction.zero()
                    for target, function in self.transitions[state].items():
                        value = values[target]
                        if not value.is_zero():
                            total = total + function * value
                    updated[state] = total
                else:
                    updated[state] = RationalFunction.zero()
            values = updated
        return values[self.initial_state]

    def expected_reward(
        self, targets: Iterable[State], method: str = "gauss"
    ) -> RationalFunction:
        """``E[cumulative reward until reaching targets]`` symbolically.

        Requires (graph-preserving assumption) that the targets are
        reached with probability 1 from every state that the initial
        state can reach; otherwise the expected reward is infinite and a
        ``ValueError`` is raised.  ``method`` as in
        :meth:`reachability_probability`.
        """
        targets = set(targets)
        if self.initial_state in targets:
            return RationalFunction.zero()
        reachable = self._forward_reachable(targets)
        can_reach = self._states_reaching(targets)
        stuck = reachable - can_reach
        if stuck:
            raise ValueError(
                "expected reward is infinite: states "
                f"{sorted(map(str, stuck))} reachable from the initial state "
                "cannot reach the target"
            )
        matrix = self._restricted_matrix(targets, allowed=None)
        if matrix is None or self.initial_state not in matrix:
            raise ValueError("initial state cannot reach the target")
        _ANALYSIS_COUNTER["count"] += 1
        if method == "gauss":
            rhs = {
                state: self.state_rewards[state]
                for state in matrix
                if state not in targets
            }
            return self._cramer_solve(matrix, targets, rhs)
        if method != "eliminate":
            raise ValueError(f"unknown method {method!r}")
        rewards = {s: self.state_rewards[s] for s in matrix}
        matrix, rewards = self._eliminate(
            matrix, rewards, targets | {self.initial_state}
        )
        self_loop = matrix[self.initial_state].get(
            self.initial_state, RationalFunction.zero()
        )
        denominator = RationalFunction.one() - self_loop
        if denominator.is_zero():
            # Absorbing non-target initial state: the target is never
            # reached, so the cumulative reward diverges.
            raise ValueError(
                "expected reward is infinite: the initial state's residual "
                "self-loop is structurally 1 (absorbing non-target state)"
            )
        return rewards[self.initial_state] / denominator

    def _cramer_solve(
        self,
        matrix: Dict[State, Dict[State, RationalFunction]],
        targets: Set[State],
        rhs: Dict[State, RationalFunction],
    ) -> RationalFunction:
        """Solve ``(I − Q)·x = rhs`` for ``x[initial]`` symbolically.

        ``Q`` is the transient-to-transient block of ``matrix``.  Each
        row is cleared to polynomials by multiplying with the product of
        its entries' denominators; the same scaling multiplies both
        Cramer determinants, so the ratio is unaffected.
        """
        transient = [s for s in matrix if s not in targets]
        index = {s: i for i, s in enumerate(transient)}
        n = len(transient)
        poly_rows: list = []
        rhs_polys: list = []
        for state in transient:
            entries: Dict[State, RationalFunction] = {
                t: f for t, f in matrix[state].items() if t in index
            }
            unique_denominators = {
                f.denominator for f in entries.values()
            } | {rhs[state].denominator}
            row_denominator = Polynomial.one()
            for den in unique_denominators:
                if den != Polynomial.one():
                    row_denominator = row_denominator * den
            row = [Polynomial.zero()] * n
            i = index[state]
            row[i] = row_denominator
            for target, function in entries.items():
                scale = row_denominator.exact_div(function.denominator)
                row[index[target]] = row[index[target]] - (
                    function.numerator * scale
                )
            rhs_scale = row_denominator.exact_div(rhs[state].denominator)
            poly_rows.append(row)
            rhs_polys.append(rhs[state].numerator * rhs_scale)
        denominator_det = bareiss_determinant(poly_rows)
        if denominator_det.is_zero():
            raise ValueError("singular reachability system")
        column = index[self.initial_state]
        replaced = [
            [
                (rhs_polys[i] if j == column else poly_rows[i][j])
                for j in range(n)
            ]
            for i in range(n)
        ]
        numerator_det = bareiss_determinant(replaced)
        return RationalFunction(numerator_det, denominator_det)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _successor_graph(self) -> Dict[State, Set[State]]:
        return {s: set(row) for s, row in self.transitions.items()}

    def _states_reaching(
        self, targets: Set[State], allowed: Optional[Set[State]] = None
    ) -> Set[State]:
        """States with a structural path to the targets via ``allowed``."""
        allowed = set(self.states) if allowed is None else set(allowed)
        predecessors: Dict[State, Set[State]] = {s: set() for s in self.states}
        for source, row in self.transitions.items():
            for target in row:
                predecessors[target].add(source)
        reached = set(targets)
        frontier = list(targets)
        while frontier:
            state = frontier.pop()
            for pred in predecessors[state]:
                if pred not in reached and (pred in allowed or pred in targets):
                    reached.add(pred)
                    frontier.append(pred)
        return reached

    def _forward_reachable(self, targets: Set[State]) -> Set[State]:
        """States reachable from the initial state, stopping at targets."""
        seen = {self.initial_state}
        frontier = [self.initial_state]
        while frontier:
            state = frontier.pop()
            if state in targets:
                continue
            for target in self.transitions[state]:
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return seen

    def _restricted_matrix(
        self, targets: Set[State], allowed: Optional[Set[State]]
    ) -> Optional[Dict[State, Dict[State, RationalFunction]]]:
        """Sub-stochastic matrix keeping only states that matter.

        Keeps states that are (a) forward-reachable from the initial
        state, (b) able to reach the targets through ``allowed`` states,
        plus the targets themselves (made absorbing).  Returns ``None``
        when the initial state cannot reach the targets at all.
        """
        can_reach = self._states_reaching(targets, allowed)
        if self.initial_state not in can_reach:
            return None
        keep = (self._forward_reachable(targets) & can_reach) | targets
        if allowed is not None:
            keep = {
                s
                for s in keep
                if s in targets or s in allowed or s == self.initial_state
            }
        matrix: Dict[State, Dict[State, RationalFunction]] = {}
        for state in self.states:
            if state not in keep:
                continue
            if state in targets:
                matrix[state] = {}
                continue
            matrix[state] = {
                target: function
                for target, function in self.transitions[state].items()
                if target in keep
            }
        return matrix

    @staticmethod
    def _eliminate(
        matrix: Dict[State, Dict[State, RationalFunction]],
        rewards: Dict[State, RationalFunction],
        protected: Set[State],
    ):
        """Eliminate every state not in ``protected``.

        Callers protect the targets and the initial state; every other
        state is removed by the Daws redirection rule.
        """
        one = RationalFunction.one()
        predecessors: Dict[State, Set[State]] = {s: set() for s in matrix}
        for source, row in matrix.items():
            for target in row:
                predecessors[target].add(source)
        # Eliminate in insertion order; any order is correct.
        for state in list(matrix):
            if state in protected:
                continue
            row = matrix[state]
            self_loop = row.get(state, RationalFunction.zero())
            denominator = one - self_loop
            if denominator.is_zero():
                # Structurally-absorbing state (p(s,s) == 1, e.g. a trap
                # introduced by a repair candidate): no mass ever leaves
                # it, so under sub-stochastic semantics every incoming
                # transition is simply dropped instead of redistributed.
                for pred in list(predecessors[state]):
                    if pred == state or pred not in matrix:
                        continue
                    matrix[pred].pop(state, None)
                for target in row:
                    predecessors[target].discard(state)
                del matrix[state]
                del predecessors[state]
                continue
            factor = one / denominator
            out_edges = {t: f for t, f in row.items() if t != state}
            reward_here = rewards[state]
            for pred in list(predecessors[state]):
                if pred == state or pred not in matrix:
                    continue
                weight = matrix[pred].pop(state, None)
                if weight is None:
                    continue
                through = weight * factor
                rewards[pred] = rewards[pred] + through * reward_here
                for target, function in out_edges.items():
                    updated = matrix[pred].get(target, RationalFunction.zero()) + (
                        through * function
                    )
                    matrix[pred][target] = updated
                    predecessors[target].add(pred)
            # Absorb the self-loop's reward contribution is already in
            # `factor`; drop the state.
            for target in row:
                predecessors[target].discard(state)
            del matrix[state]
            del predecessors[state]
        return matrix, rewards


class ParametricConstraint:
    """The reduced constraint ``f(v) ⋈ b`` of Propositions 2/3.

    Attributes
    ----------
    function:
        The rational function produced by parametric model checking.
    comparison / bound:
        Taken from the PCTL operator.
    """

    def __init__(self, function: RationalFunction, comparison: str, bound: float):
        self.function = function
        self.comparison = comparison
        self.bound = float(bound)
        self._compiled = None
        self._stacked = None

    @property
    def _sign(self) -> float:
        """+1 when larger ``f`` helps the margin, −1 when it hurts."""
        return -1.0 if self.comparison in ("<", "<=") else 1.0

    def compiled(self):
        """The lazily-built numpy kernel of ``f`` (cached on the object).

        A :class:`~repro.symbolic.compile.CompiledRationalFunction`
        sharing one term table between ``f`` and all its partial
        derivatives; the NLP layer evaluates margins, batches of start
        points and analytic jacobians through it.  Picklable, so cached
        constraints carry their kernel into the persistent result store
        and warm service runs skip compilation.
        """
        try:
            cached = self._compiled
        except AttributeError:  # unpickled from an older on-disk store
            cached = None
        if cached is None:
            cached = self.function.compiled()
            self._compiled = cached
        return cached

    def stacked(self):
        """A one-row stacked kernel for this constraint (cached).

        The margin row ``sign · (f(v) − b)`` as a
        :class:`~repro.symbolic.compile.StackedConstraintKernel`; the
        NLP solver fuses it with sibling constraints' rows (or uses it
        standalone) so SLSQP sees one vector-valued callback.  Picklable
        and cached on the object, so warm stores carry it alongside
        :meth:`compiled`.
        """
        try:
            cached = self._stacked
        except AttributeError:  # unpickled from an older on-disk store
            cached = None
        if cached is None:
            from repro.symbolic.compile import StackedConstraintKernel

            cached = StackedConstraintKernel(
                [(self.function, self._sign, self.bound)]
            )
            self._stacked = cached
        return cached

    def holds_at(self, assignment: Mapping[str, float]) -> bool:
        """Whether the constraint is satisfied at a parameter point."""
        return check_comparison(
            self.comparison, float(self.function.evaluate(assignment)), self.bound
        )

    def margin(self, assignment: Mapping[str, float]) -> float:
        """Signed slack: positive when the constraint holds.

        For ``<``/``<=`` this is ``b − f(v)``; for ``>``/``>=`` it is
        ``f(v) − b`` — the quantity an optimiser must keep non-negative.
        """
        value = float(self.function.evaluate(assignment))
        if self.comparison in ("<", "<="):
            return self.bound - value
        return value - self.bound

    def fast_margin(self, assignment: Mapping[str, float]) -> float:
        """:meth:`margin` through the compiled kernel (float path)."""
        value = self.compiled().evaluate_assignment(assignment)
        return self._sign * (value - self.bound)

    def margin_gradient(self, assignment: Mapping[str, float]) -> Dict[str, float]:
        """Analytic ``∂margin/∂v`` by parameter name (compiled kernel)."""
        sign = self._sign
        partials = self.compiled().gradient_assignment(assignment)
        return {name: sign * value for name, value in partials.items()}

    def margin_batch(self, points, names):
        """Margins at an ``(m, len(names))`` matrix in one vectorized pass.

        ``names`` gives the column order of ``points``; it must cover
        the kernel's parameters.  Rows with a vanishing denominator
        come back non-finite rather than raising.
        """
        import numpy as np

        kernel = self.compiled()
        matrix = np.asarray(points, dtype=float)
        columns = [names.index(name) for name in kernel.params]
        values = kernel.evaluate_batch(matrix[:, columns])
        return self._sign * (values - self.bound)

    def __repr__(self) -> str:
        return f"ParametricConstraint(f {self.comparison} {self.bound})"


def parametric_constraint(
    model: ParametricDTMC, formula: StateFormula
) -> ParametricConstraint:
    """Reduce ``model |= formula`` to a rational constraint.

    Supports the non-nested PCTL fragment of the paper's repairs:
    ``P ⋈ b [φ1 U φ2]`` (incl. ``F``), ``P ⋈ b [G φ]`` via its dual, and
    ``R ⋈ b [F φ]``, where ``φ1``, ``φ2``, ``φ`` are label-only formulas.
    """
    if isinstance(formula, ProbabilisticOperator):
        path = formula.path
        if isinstance(path, Globally):
            inner = label_satisfaction_set(model.states, model.labels, path.operand)
            complement = set(model.states) - set(inner)
            if path.step_bound is None:
                reach_bad = model.reachability_probability(complement)
            else:
                reach_bad = model.bounded_reachability_probability(
                    complement, path.step_bound
                )
            return ParametricConstraint(
                RationalFunction.one() - reach_bad,
                formula.comparison,
                formula.bound,
            )
        if isinstance(path, Until):
            left = label_satisfaction_set(model.states, model.labels, path.left)
            right = label_satisfaction_set(model.states, model.labels, path.right)
            if path.step_bound is None:
                function = model.reachability_probability(
                    right, allowed=set(left)
                )
            else:
                function = model.bounded_reachability_probability(
                    right, path.step_bound, allowed=set(left)
                )
            return ParametricConstraint(function, formula.comparison, formula.bound)
        raise TypeError(f"unsupported parametric path formula {path!r}")
    if isinstance(formula, RewardOperator):
        targets = label_satisfaction_set(
            model.states, model.labels, formula.path.right
        )
        function = model.expected_reward(targets)
        return ParametricConstraint(function, formula.comparison, formula.bound)
    raise TypeError(
        "parametric checking expects a top-level P or R operator, "
        f"got {formula!r}"
    )


def restricted_model(
    model: ParametricDTMC, restriction: Iterable[State]
) -> ParametricDTMC:
    """Sub-stochastic truncation of ``model`` to the ``restriction`` states.

    Keeps only the restriction states (plus the initial state) and drops
    every transition into a dropped state, so row sums may fall below 1:
    the dropped mass escapes the truncation and contributes nothing to
    reachability or reward.  That makes the truncation an
    *under-approximation* — the foundation of counterexample-guided
    localization, where eliminating only the evidence-touched subchain
    stands in for the (much larger) full elimination.
    """
    keep = set(restriction) | {model.initial_state}
    states = [state for state in model.states if state in keep]
    transitions = {
        state: {
            target: function
            for target, function in model.transitions[state].items()
            if target in keep
        }
        for state in states
    }
    return ParametricDTMC(
        states=states,
        transitions=transitions,
        initial_state=model.initial_state,
        labels={state: model.labels[state] for state in states},
        state_rewards={state: model.state_rewards[state] for state in states},
    )


def _validate_restriction_direction(
    model: ParametricDTMC, formula: StateFormula
) -> None:
    """Reject formula shapes whose truth is not preserved by truncation.

    Truncation *under*-approximates reachability probability and (for
    non-negative rewards) expected reward, so an upper bound on the
    truncation is a necessary condition — a relaxation — of the full
    constraint.  Lower bounds and ``G`` (whose value truncation
    over-approximates) would flip into unsound strengthenings.
    """
    if formula.comparison not in ("<", "<="):
        raise ValueError(
            "restricted elimination relaxes upper-bound formulas only; a "
            "lower bound on the truncated under-approximation would "
            "unsoundly strengthen the constraint"
        )
    if isinstance(formula, ProbabilisticOperator):
        if not isinstance(formula.path, Until):
            raise ValueError(
                "restricted elimination supports until/eventually paths "
                "only (G is over-approximated by truncation)"
            )
        return
    if isinstance(formula, RewardOperator):
        for state, reward in model.state_rewards.items():
            if reward.variables():
                raise ValueError(
                    "restricted elimination needs constant state rewards "
                    f"(reward of {state!r} is parametric)"
                )
            if float(reward.evaluate({})) < 0.0:
                raise ValueError(
                    "restricted elimination needs non-negative state "
                    f"rewards (reward of {state!r} is negative)"
                )
        return
    raise TypeError(
        "restricted elimination expects a top-level P or R operator, "
        f"got {formula!r}"
    )


def restricted_constraint(
    model: ParametricDTMC,
    formula: StateFormula,
    restriction: Iterable[State],
    cache=None,
) -> ParametricConstraint:
    """Eliminate only the ``restriction`` subchain of ``model |= formula``.

    Returns the :class:`ParametricConstraint` of the sub-stochastic
    truncation (see :func:`restricted_model`) — a *relaxation* of the
    full constraint: every assignment satisfying the full formula
    satisfies it, so adding it to a repair never cuts off true repairs,
    and its infeasibility implies the full problem's.  The elimination is
    memoized through :class:`~repro.checking.cache.CheckCache` keyed on
    the truncation's own content fingerprint, so re-localizing the same
    evidence subchain is free.

    Raises ``ValueError`` for directions truncation does not preserve:
    lower bounds, ``G`` paths, and parametric or negative rewards.
    """
    _validate_restriction_direction(model, formula)
    truncated = restricted_model(model, restriction)
    from repro.checking.cache import get_cache

    return get_cache(cache).parametric_constraint(truncated, formula)
