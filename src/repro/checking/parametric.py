"""Parametric model checking by state elimination.

This module plays the role PRISM's parametric engine plays in the paper
(Propositions 2 and 3): given a Markov chain whose transition
probabilities are *rational functions* of repair parameters, it computes

* the reachability probability ``Pr(φ1 U φ2)``, and
* the expected cumulative reward ``R [F φ]``,

as closed-form rational functions of the parameters.  Model Repair and
Data Repair then hand ``f(v) ⋈ b`` to the nonlinear optimiser.

Algorithm: Daws-style state elimination (also used by PARAM and Storm).
Working with a *sub-stochastic* matrix (mass that can never reach the
target is simply dropped), each non-initial, non-target state ``s`` is
eliminated by redirecting every ``u → s → v`` pair through

    p'(u, v) = p(u, v) + p(u, s) · p(s, v) / (1 − p(s, s))

and, for expected rewards, accumulating

    r'(u) = r(u) + p(u, s) · r(s) / (1 − p(s, s)).

The standard *graph-preserving* assumption applies: a transition's
rational function must be structurally nonzero and must stay positive on
the parameter region of interest (the repair formulations guarantee this
through their box constraints, Equation 6).
"""

from __future__ import annotations

import heapq
import logging
from typing import Dict, FrozenSet, Hashable, Iterable, Mapping, Optional, Set, Union

from repro.logic.pctl import (
    And,
    AtomicProposition,
    Eventually,
    FalseFormula,
    Globally,
    Implies,
    Not,
    Or,
    ProbabilisticOperator,
    RewardOperator,
    StateFormula,
    TrueFormula,
    Until,
    check_comparison,
)
from repro.mdp.model import DTMC
from repro.symbolic import Polynomial, RationalFunction, bareiss_determinant

State = Hashable
Coefficient = Union[int, float, RationalFunction, Polynomial]

logger = logging.getLogger(__name__)

#: Valid elimination orders for :meth:`ParametricDTMC._eliminate`.
ELIMINATION_ORDERS = ("insertion", "min-degree")

#: Count of symbolic reductions actually performed (state elimination or
#: fraction-free Gauss).  :class:`repro.checking.cache.CheckCache` reuse
#: is asserted against this counter: repeated repairs of an unchanged
#: (model, formula) pair must increment it exactly once.
_ANALYSIS_COUNTER = {"count": 0}


def analysis_count() -> int:
    """How many symbolic reductions have run in this process."""
    return _ANALYSIS_COUNTER["count"]


def _as_rational(value: Coefficient) -> RationalFunction:
    if isinstance(value, RationalFunction):
        return value
    if isinstance(value, Polynomial):
        return RationalFunction(value)
    return RationalFunction.constant(value)


def label_satisfaction_set(
    states: Iterable[State],
    labels: Mapping[State, frozenset],
    formula: StateFormula,
) -> FrozenSet[State]:
    """Satisfaction set of a label-only (non-probabilistic) formula.

    Parametric checking requires the path formula's endpoints to be
    boolean combinations of atomic propositions; nested ``P``/``R``
    operators raise ``TypeError``.
    """
    states = list(states)
    if isinstance(formula, TrueFormula):
        return frozenset(states)
    if isinstance(formula, FalseFormula):
        return frozenset()
    if isinstance(formula, AtomicProposition):
        return frozenset(
            s for s in states if formula.name in labels.get(s, frozenset())
        )
    if isinstance(formula, Not):
        return frozenset(states) - label_satisfaction_set(
            states, labels, formula.operand
        )
    if isinstance(formula, And):
        return label_satisfaction_set(
            states, labels, formula.left
        ) & label_satisfaction_set(states, labels, formula.right)
    if isinstance(formula, Or):
        return label_satisfaction_set(
            states, labels, formula.left
        ) | label_satisfaction_set(states, labels, formula.right)
    if isinstance(formula, Implies):
        return (
            frozenset(states) - label_satisfaction_set(states, labels, formula.left)
        ) | label_satisfaction_set(states, labels, formula.right)
    raise TypeError(
        f"parametric checking needs label-only sub-formulas, got {formula!r}"
    )


class ParametricDTMC:
    """A Markov chain whose transitions are rational functions.

    Parameters
    ----------
    states:
        State identifiers.
    transitions:
        ``{source: {target: coefficient}}`` where coefficients may be
        numbers, :class:`Polynomial` or :class:`RationalFunction`.
        Structural zeros are simply omitted.
    initial_state:
        Start state.
    labels:
        Atomic-proposition labelling.
    state_rewards:
        Optional symbolic (or numeric) state rewards.

    Examples
    --------
    >>> from repro.symbolic import Polynomial
    >>> p = Polynomial.variable("p")
    >>> pm = ParametricDTMC(
    ...     states=["a", "b"],
    ...     transitions={"a": {"b": p, "a": 1 - p}, "b": {"b": 1}},
    ...     initial_state="a",
    ...     labels={"b": {"done"}},
    ... )
    >>> f = pm.reachability_probability({"b"})
    >>> f.evaluate({"p": 0.3})
    Fraction(1, 1)
    """

    def __init__(
        self,
        states: Iterable[State],
        transitions: Mapping[State, Mapping[State, Coefficient]],
        initial_state: State,
        labels: Optional[Mapping[State, Iterable[str]]] = None,
        state_rewards: Optional[Mapping[State, Coefficient]] = None,
    ):
        self.states = list(states)
        if initial_state not in set(self.states):
            raise ValueError(f"unknown initial state {initial_state!r}")
        self.initial_state = initial_state
        self.transitions: Dict[State, Dict[State, RationalFunction]] = {}
        for source in self.states:
            row = transitions.get(source, {})
            symbolic_row = {}
            for target, value in row.items():
                if target not in set(self.states):
                    raise ValueError(f"unknown target state {target!r}")
                rational = _as_rational(value)
                if not rational.is_zero():
                    symbolic_row[target] = rational
            self.transitions[source] = symbolic_row
        self.labels: Dict[State, frozenset] = {
            s: frozenset((labels or {}).get(s, frozenset())) for s in self.states
        }
        self.state_rewards: Dict[State, RationalFunction] = {
            s: _as_rational((state_rewards or {}).get(s, 0)) for s in self.states
        }

    # ------------------------------------------------------------------
    # Constructors / conversion
    # ------------------------------------------------------------------
    @staticmethod
    def from_dtmc(chain: DTMC) -> "ParametricDTMC":
        """Lift a concrete chain to a (constant) parametric one."""
        return ParametricDTMC(
            states=chain.states,
            transitions={
                s: {t: p for t, p in row.items()}
                for s, row in chain.transitions.items()
            },
            initial_state=chain.initial_state,
            labels=chain.labels,
            state_rewards=chain.state_rewards,
        )

    def parameters(self) -> FrozenSet[str]:
        """All parameter names appearing anywhere in the model."""
        names: Set[str] = set()
        for row in self.transitions.values():
            for function in row.values():
                names |= function.variables()
        for function in self.state_rewards.values():
            names |= function.variables()
        return frozenset(names)

    def instantiate(self, assignment: Mapping[str, float]) -> DTMC:
        """Evaluate every function at ``assignment`` and build a DTMC.

        Raises :class:`~repro.mdp.ModelValidationError` if the assignment
        leaves the well-formed region (negative probabilities or rows not
        summing to 1).
        """
        transitions = {
            s: {t: float(f.evaluate(assignment)) for t, f in row.items()}
            for s, row in self.transitions.items()
        }
        rewards = {
            s: float(f.evaluate(assignment)) for s, f in self.state_rewards.items()
        }
        return DTMC(
            states=self.states,
            transitions=transitions,
            initial_state=self.initial_state,
            labels=self.labels,
            state_rewards=rewards,
        )

    # ------------------------------------------------------------------
    # Parametric analysis
    # ------------------------------------------------------------------
    def reachability_probability(
        self,
        targets: Iterable[State],
        allowed: Optional[Set[State]] = None,
        method: str = "gauss",
        order: str = "insertion",
        stats: Optional[Dict[str, int]] = None,
    ) -> RationalFunction:
        """``Pr_{s0}(allowed U targets)`` as a rational function.

        ``allowed`` defaults to all states (plain ``F targets``).

        Parameters
        ----------
        method:
            ``"gauss"`` (default) solves the reachability linear system
            by fraction-free Cramer's rule — intermediate polynomial
            degrees stay bounded by the state count, so it scales to
            denser models.  ``"eliminate"`` is classic Daws state
            elimination; equivalent output, but intermediate rational
            functions can blow up on dense graphs.
        order / stats:
            Elimination order and counter sink for ``"eliminate"`` (see
            :meth:`_eliminate`); ignored by ``"gauss"``.
        """
        targets = set(targets)
        if self.initial_state in targets:
            return RationalFunction.one()
        matrix = self._restricted_matrix(targets, allowed)
        if matrix is None:
            return RationalFunction.zero()
        _ANALYSIS_COUNTER["count"] += 1
        if method == "gauss":
            rhs = {}
            for state, row in matrix.items():
                if state in targets:
                    continue
                mass = RationalFunction.zero()
                for target in targets:
                    if target in row:
                        mass = mass + row[target]
                rhs[state] = mass
            return self._cramer_solve(matrix, targets, rhs)
        if method != "eliminate":
            raise ValueError(f"unknown method {method!r}")
        rewards = {s: RationalFunction.zero() for s in matrix}
        matrix, rewards = self._eliminate(
            matrix, rewards, targets | {self.initial_state}, order=order,
            stats=stats,
        )
        row = matrix[self.initial_state]
        numerator = RationalFunction.zero()
        for target in targets:
            if target in row:
                numerator = numerator + row[target]
        self_loop = row.get(self.initial_state, RationalFunction.zero())
        denominator = RationalFunction.one() - self_loop
        if denominator.is_zero():
            # The initial state's residual self-loop is structurally 1:
            # it is an absorbing non-target state, so no mass ever
            # reaches the targets (sub-stochastic semantics).
            return RationalFunction.zero()
        return numerator / denominator

    def bounded_reachability_probability(
        self,
        targets: Iterable[State],
        steps: int,
        allowed: Optional[Set[State]] = None,
    ) -> RationalFunction:
        """``Pr_{s0}(allowed U≤steps targets)`` as a rational function.

        Computed by ``steps`` symbolic vector-matrix iterations; the
        result's polynomial degree grows with ``steps``, so this is
        meant for modest bounds (the usual case for bounded-time
        properties).
        """
        targets = set(targets)
        if steps < 0:
            raise ValueError("step bound must be non-negative")
        allowed_set = (
            set(self.states) if allowed is None else set(allowed)
        ) - targets
        values: Dict[State, RationalFunction] = {
            s: (RationalFunction.one() if s in targets else RationalFunction.zero())
            for s in self.states
        }
        for _ in range(steps):
            updated: Dict[State, RationalFunction] = {}
            for state in self.states:
                if state in targets:
                    updated[state] = RationalFunction.one()
                elif state in allowed_set:
                    total = RationalFunction.zero()
                    for target, function in self.transitions[state].items():
                        value = values[target]
                        if not value.is_zero():
                            total = total + function * value
                    updated[state] = total
                else:
                    updated[state] = RationalFunction.zero()
            values = updated
        return values[self.initial_state]

    def expected_reward(
        self,
        targets: Iterable[State],
        method: str = "gauss",
        order: str = "insertion",
        stats: Optional[Dict[str, int]] = None,
    ) -> RationalFunction:
        """``E[cumulative reward until reaching targets]`` symbolically.

        Requires (graph-preserving assumption) that the targets are
        reached with probability 1 from every state that the initial
        state can reach; otherwise the expected reward is infinite and a
        ``ValueError`` is raised.  ``method``, ``order`` and ``stats``
        as in :meth:`reachability_probability`.
        """
        targets = set(targets)
        if self.initial_state in targets:
            return RationalFunction.zero()
        reachable = self._forward_reachable(targets)
        can_reach = self._states_reaching(targets)
        stuck = reachable - can_reach
        if stuck:
            raise ValueError(
                "expected reward is infinite: states "
                f"{sorted(map(str, stuck))} reachable from the initial state "
                "cannot reach the target"
            )
        matrix = self._restricted_matrix(targets, allowed=None)
        if matrix is None or self.initial_state not in matrix:
            raise ValueError("initial state cannot reach the target")
        _ANALYSIS_COUNTER["count"] += 1
        if method == "gauss":
            rhs = {
                state: self.state_rewards[state]
                for state in matrix
                if state not in targets
            }
            return self._cramer_solve(matrix, targets, rhs)
        if method != "eliminate":
            raise ValueError(f"unknown method {method!r}")
        rewards = {s: self.state_rewards[s] for s in matrix}
        matrix, rewards = self._eliminate(
            matrix, rewards, targets | {self.initial_state}, order=order,
            stats=stats,
        )
        self_loop = matrix[self.initial_state].get(
            self.initial_state, RationalFunction.zero()
        )
        denominator = RationalFunction.one() - self_loop
        if denominator.is_zero():
            # Absorbing non-target initial state: the target is never
            # reached, so the cumulative reward diverges.
            raise ValueError(
                "expected reward is infinite: the initial state's residual "
                "self-loop is structurally 1 (absorbing non-target state)"
            )
        return rewards[self.initial_state] / denominator

    def _cramer_solve(
        self,
        matrix: Dict[State, Dict[State, RationalFunction]],
        targets: Set[State],
        rhs: Dict[State, RationalFunction],
    ) -> RationalFunction:
        """Solve ``(I − Q)·x = rhs`` for ``x[initial]`` symbolically.

        ``Q`` is the transient-to-transient block of ``matrix``.  Each
        row is cleared to polynomials by multiplying with the product of
        its entries' denominators; the same scaling multiplies both
        Cramer determinants, so the ratio is unaffected.
        """
        transient = [s for s in matrix if s not in targets]
        index = {s: i for i, s in enumerate(transient)}
        n = len(transient)
        poly_rows: list = []
        rhs_polys: list = []
        for state in transient:
            entries: Dict[State, RationalFunction] = {
                t: f for t, f in matrix[state].items() if t in index
            }
            unique_denominators = {
                f.denominator for f in entries.values()
            } | {rhs[state].denominator}
            row_denominator = Polynomial.one()
            for den in unique_denominators:
                if den != Polynomial.one():
                    row_denominator = row_denominator * den
            row = [Polynomial.zero()] * n
            i = index[state]
            row[i] = row_denominator
            for target, function in entries.items():
                scale = row_denominator.exact_div(function.denominator)
                row[index[target]] = row[index[target]] - (
                    function.numerator * scale
                )
            rhs_scale = row_denominator.exact_div(rhs[state].denominator)
            poly_rows.append(row)
            rhs_polys.append(rhs[state].numerator * rhs_scale)
        denominator_det = bareiss_determinant(poly_rows)
        if denominator_det.is_zero():
            raise ValueError("singular reachability system")
        column = index[self.initial_state]
        replaced = [
            [
                (rhs_polys[i] if j == column else poly_rows[i][j])
                for j in range(n)
            ]
            for i in range(n)
        ]
        numerator_det = bareiss_determinant(replaced)
        return RationalFunction(numerator_det, denominator_det)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _successor_graph(self) -> Dict[State, Set[State]]:
        return {s: set(row) for s, row in self.transitions.items()}

    def _states_reaching(
        self, targets: Set[State], allowed: Optional[Set[State]] = None
    ) -> Set[State]:
        """States with a structural path to the targets via ``allowed``."""
        allowed = set(self.states) if allowed is None else set(allowed)
        predecessors: Dict[State, Set[State]] = {s: set() for s in self.states}
        for source, row in self.transitions.items():
            for target in row:
                predecessors[target].add(source)
        reached = set(targets)
        frontier = list(targets)
        while frontier:
            state = frontier.pop()
            for pred in predecessors[state]:
                if pred not in reached and (pred in allowed or pred in targets):
                    reached.add(pred)
                    frontier.append(pred)
        return reached

    def _forward_reachable(self, targets: Set[State]) -> Set[State]:
        """States reachable from the initial state, stopping at targets."""
        seen = {self.initial_state}
        frontier = [self.initial_state]
        while frontier:
            state = frontier.pop()
            if state in targets:
                continue
            for target in self.transitions[state]:
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return seen

    def _restricted_matrix(
        self, targets: Set[State], allowed: Optional[Set[State]]
    ) -> Optional[Dict[State, Dict[State, RationalFunction]]]:
        """Sub-stochastic matrix keeping only states that matter.

        Keeps states that are (a) forward-reachable from the initial
        state, (b) able to reach the targets through ``allowed`` states,
        plus the targets themselves (made absorbing).  Returns ``None``
        when the initial state cannot reach the targets at all.
        """
        can_reach = self._states_reaching(targets, allowed)
        if self.initial_state not in can_reach:
            return None
        keep = (self._forward_reachable(targets) & can_reach) | targets
        if allowed is not None:
            keep = {
                s
                for s in keep
                if s in targets or s in allowed or s == self.initial_state
            }
        matrix: Dict[State, Dict[State, RationalFunction]] = {}
        for state in self.states:
            if state not in keep:
                continue
            if state in targets:
                matrix[state] = {}
                continue
            matrix[state] = {
                target: function
                for target, function in self.transitions[state].items()
                if target in keep
            }
        return matrix

    @staticmethod
    def _eliminate(
        matrix: Dict[State, Dict[State, RationalFunction]],
        rewards: Dict[State, RationalFunction],
        protected: Set[State],
        order: str = "insertion",
        stats: Optional[Dict[str, int]] = None,
    ):
        """Eliminate every state not in ``protected``.

        Callers protect the targets and the initial state; every other
        state is removed by the Daws redirection rule.  Any order yields
        the same rational function — the order only changes how large
        the intermediate products grow:

        * ``order="insertion"`` removes states in matrix insertion order
          (the historical behaviour);
        * ``order="min-degree"`` greedily removes the state with the
          fewest predecessor×successor redirection products next — the
          classic fewest-fill-in heuristic.  Degrees live in a lazy
          heap: stale entries (a neighbour's elimination changed the
          degree) are re-pushed with the fresh score on pop, so each
          pick costs O(log n) amortised instead of a linear rescan.

        ``stats``, when given, accumulates ``eliminated`` / ``fill_in``
        / ``absorbed`` counters in place.
        """
        if order not in ELIMINATION_ORDERS:
            raise ValueError(f"unknown elimination order {order!r}")
        one = RationalFunction.one()
        counters = stats if stats is not None else {}
        for name in ("eliminated", "fill_in", "absorbed"):
            counters.setdefault(name, 0)
        predecessors: Dict[State, Set[State]] = {s: set() for s in matrix}
        for source, row in matrix.items():
            for target in row:
                predecessors[target].add(source)

        def degree(state: State) -> int:
            """Redirection products eliminating ``state`` would perform."""
            incoming = len(predecessors[state]) - (
                1 if state in predecessors[state] else 0
            )
            outgoing = len(matrix[state]) - (1 if state in matrix[state] else 0)
            return incoming * outgoing

        def eliminate_state(state: State) -> None:
            row = matrix[state]
            self_loop = row.get(state, RationalFunction.zero())
            denominator = one - self_loop
            counters["eliminated"] += 1
            if denominator.is_zero():
                # Structurally-absorbing state (p(s,s) == 1, e.g. a trap
                # introduced by a repair candidate): no mass ever leaves
                # it, so under sub-stochastic semantics every incoming
                # transition is simply dropped instead of redistributed.
                counters["absorbed"] += 1
                logger.debug(
                    "state elimination: dropping structurally-absorbing "
                    "state %r (%d incoming transition(s) discarded)",
                    state,
                    sum(
                        1
                        for pred in predecessors[state]
                        if pred != state and pred in matrix
                    ),
                )
                for pred in list(predecessors[state]):
                    if pred == state or pred not in matrix:
                        continue
                    matrix[pred].pop(state, None)
                for target in row:
                    predecessors[target].discard(state)
                del matrix[state]
                del predecessors[state]
                return
            factor = one / denominator
            out_edges = {t: f for t, f in row.items() if t != state}
            reward_here = rewards[state]
            for pred in list(predecessors[state]):
                if pred == state or pred not in matrix:
                    continue
                weight = matrix[pred].pop(state, None)
                if weight is None:
                    continue
                through = weight * factor
                rewards[pred] = rewards[pred] + through * reward_here
                for target, function in out_edges.items():
                    existing = matrix[pred].get(target)
                    if existing is None:
                        counters["fill_in"] += 1
                        matrix[pred][target] = through * function
                    else:
                        matrix[pred][target] = existing + through * function
                    predecessors[target].add(pred)
            # The self-loop's reward contribution is already folded into
            # ``factor`` (1 / (1 − p(s, s)) sums the geometric series of
            # revisits); with every predecessor redirected, the state
            # can simply be dropped.
            for target in row:
                predecessors[target].discard(state)
            del matrix[state]
            del predecessors[state]

        if order == "insertion":
            for state in list(matrix):
                if state not in protected:
                    eliminate_state(state)
            return matrix, rewards
        # Lazy min-degree heap.  The tiebreak index keeps the order (and
        # therefore the intermediate representations) deterministic and
        # avoids ever comparing state objects of mixed types.
        tiebreak = {state: position for position, state in enumerate(matrix)}
        heap = [
            (degree(state), tiebreak[state], state)
            for state in matrix
            if state not in protected
        ]
        heapq.heapify(heap)
        while heap:
            score, position, state = heapq.heappop(heap)
            if state not in matrix:
                continue
            current = degree(state)
            if current != score:
                heapq.heappush(heap, (current, position, state))
                continue
            eliminate_state(state)
        return matrix, rewards


class ParametricConstraint:
    """The reduced constraint ``f(v) ⋈ b`` of Propositions 2/3.

    Attributes
    ----------
    function:
        The rational function produced by parametric model checking.
    comparison / bound:
        Taken from the PCTL operator.
    """

    def __init__(self, function: RationalFunction, comparison: str, bound: float):
        self.function = function
        self.comparison = comparison
        self.bound = float(bound)
        self._compiled = None
        self._stacked = None

    @property
    def _sign(self) -> float:
        """+1 when larger ``f`` helps the margin, −1 when it hurts."""
        return -1.0 if self.comparison in ("<", "<=") else 1.0

    def compiled(self):
        """The lazily-built numpy kernel of ``f`` (cached on the object).

        A :class:`~repro.symbolic.compile.CompiledRationalFunction`
        sharing one term table between ``f`` and all its partial
        derivatives; the NLP layer evaluates margins, batches of start
        points and analytic jacobians through it.  Picklable, so cached
        constraints carry their kernel into the persistent result store
        and warm service runs skip compilation.
        """
        try:
            cached = self._compiled
        except AttributeError:  # unpickled from an older on-disk store
            cached = None
        if cached is None:
            cached = self.function.compiled()
            self._compiled = cached
        return cached

    def stacked(self):
        """A one-row stacked kernel for this constraint (cached).

        The margin row ``sign · (f(v) − b)`` as a
        :class:`~repro.symbolic.compile.StackedConstraintKernel`; the
        NLP solver fuses it with sibling constraints' rows (or uses it
        standalone) so SLSQP sees one vector-valued callback.  Picklable
        and cached on the object, so warm stores carry it alongside
        :meth:`compiled`.
        """
        try:
            cached = self._stacked
        except AttributeError:  # unpickled from an older on-disk store
            cached = None
        if cached is None:
            from repro.symbolic.compile import StackedConstraintKernel

            cached = StackedConstraintKernel(
                [(self.function, self._sign, self.bound)]
            )
            self._stacked = cached
        return cached

    def holds_at(self, assignment: Mapping[str, float]) -> bool:
        """Whether the constraint is satisfied at a parameter point."""
        return check_comparison(
            self.comparison, float(self.function.evaluate(assignment)), self.bound
        )

    def margin(self, assignment: Mapping[str, float]) -> float:
        """Signed slack: positive when the constraint holds.

        For ``<``/``<=`` this is ``b − f(v)``; for ``>``/``>=`` it is
        ``f(v) − b`` — the quantity an optimiser must keep non-negative.
        """
        value = float(self.function.evaluate(assignment))
        if self.comparison in ("<", "<="):
            return self.bound - value
        return value - self.bound

    def fast_margin(self, assignment: Mapping[str, float]) -> float:
        """:meth:`margin` through the compiled kernel (float path)."""
        value = self.compiled().evaluate_assignment(assignment)
        return self._sign * (value - self.bound)

    def margin_gradient(self, assignment: Mapping[str, float]) -> Dict[str, float]:
        """Analytic ``∂margin/∂v`` by parameter name (compiled kernel)."""
        sign = self._sign
        partials = self.compiled().gradient_assignment(assignment)
        return {name: sign * value for name, value in partials.items()}

    def margin_batch(self, points, names):
        """Margins at an ``(m, len(names))`` matrix in one vectorized pass.

        ``names`` gives the column order of ``points``; it must cover
        the kernel's parameters.  Rows with a vanishing denominator
        come back non-finite rather than raising.
        """
        import numpy as np

        kernel = self.compiled()
        matrix = np.asarray(points, dtype=float)
        columns = [names.index(name) for name in kernel.params]
        values = kernel.evaluate_batch(matrix[:, columns])
        return self._sign * (values - self.bound)

    def __repr__(self) -> str:
        return f"ParametricConstraint(f {self.comparison} {self.bound})"


def parametric_constraint(
    model: ParametricDTMC,
    formula: StateFormula,
    method: str = "gauss",
    order: str = "insertion",
    stats: Optional[Dict[str, int]] = None,
) -> ParametricConstraint:
    """Reduce ``model |= formula`` to a rational constraint.

    Supports the non-nested PCTL fragment of the paper's repairs:
    ``P ⋈ b [φ1 U φ2]`` (incl. ``F``), ``P ⋈ b [G φ]`` via its dual, and
    ``R ⋈ b [F φ]``, where ``φ1``, ``φ2``, ``φ`` are label-only formulas.
    ``method``, ``order`` and ``stats`` as in
    :meth:`ParametricDTMC.reachability_probability` (step-bounded paths
    iterate the transition matrix instead and ignore all three).
    """
    if isinstance(formula, ProbabilisticOperator):
        path = formula.path
        if isinstance(path, Globally):
            inner = label_satisfaction_set(model.states, model.labels, path.operand)
            complement = set(model.states) - set(inner)
            if path.step_bound is None:
                reach_bad = model.reachability_probability(
                    complement, method=method, order=order, stats=stats
                )
            else:
                reach_bad = model.bounded_reachability_probability(
                    complement, path.step_bound
                )
            return ParametricConstraint(
                RationalFunction.one() - reach_bad,
                formula.comparison,
                formula.bound,
            )
        if isinstance(path, Until):
            left = label_satisfaction_set(model.states, model.labels, path.left)
            right = label_satisfaction_set(model.states, model.labels, path.right)
            if path.step_bound is None:
                function = model.reachability_probability(
                    right, allowed=set(left), method=method, order=order,
                    stats=stats,
                )
            else:
                function = model.bounded_reachability_probability(
                    right, path.step_bound, allowed=set(left)
                )
            return ParametricConstraint(function, formula.comparison, formula.bound)
        raise TypeError(f"unsupported parametric path formula {path!r}")
    if isinstance(formula, RewardOperator):
        targets = label_satisfaction_set(
            model.states, model.labels, formula.path.right
        )
        function = model.expected_reward(
            targets, method=method, order=order, stats=stats
        )
        return ParametricConstraint(function, formula.comparison, formula.bound)
    raise TypeError(
        "parametric checking expects a top-level P or R operator, "
        f"got {formula!r}"
    )


def restricted_model(
    model: ParametricDTMC, restriction: Iterable[State]
) -> ParametricDTMC:
    """Sub-stochastic truncation of ``model`` to the ``restriction`` states.

    Keeps only the restriction states (plus the initial state) and drops
    every transition into a dropped state, so row sums may fall below 1:
    the dropped mass escapes the truncation and contributes nothing to
    reachability or reward.  That makes the truncation an
    *under-approximation* — the foundation of counterexample-guided
    localization, where eliminating only the evidence-touched subchain
    stands in for the (much larger) full elimination.
    """
    keep = set(restriction) | {model.initial_state}
    states = [state for state in model.states if state in keep]
    transitions = {
        state: {
            target: function
            for target, function in model.transitions[state].items()
            if target in keep
        }
        for state in states
    }
    return ParametricDTMC(
        states=states,
        transitions=transitions,
        initial_state=model.initial_state,
        labels={state: model.labels[state] for state in states},
        state_rewards={state: model.state_rewards[state] for state in states},
    )


def _validate_restriction_direction(
    model: ParametricDTMC, formula: StateFormula
) -> None:
    """Reject formula shapes whose truth is not preserved by truncation.

    Truncation *under*-approximates reachability probability and (for
    non-negative rewards) expected reward, so an upper bound on the
    truncation is a necessary condition — a relaxation — of the full
    constraint.  Lower bounds and ``G`` (whose value truncation
    over-approximates) would flip into unsound strengthenings.
    """
    if formula.comparison not in ("<", "<="):
        raise ValueError(
            "restricted elimination relaxes upper-bound formulas only; a "
            "lower bound on the truncated under-approximation would "
            "unsoundly strengthen the constraint"
        )
    if isinstance(formula, ProbabilisticOperator):
        if not isinstance(formula.path, Until):
            raise ValueError(
                "restricted elimination supports until/eventually paths "
                "only (G is over-approximated by truncation)"
            )
        return
    if isinstance(formula, RewardOperator):
        for state, reward in model.state_rewards.items():
            if reward.variables():
                raise ValueError(
                    "restricted elimination needs constant state rewards "
                    f"(reward of {state!r} is parametric)"
                )
            if float(reward.evaluate({})) < 0.0:
                raise ValueError(
                    "restricted elimination needs non-negative state "
                    f"rewards (reward of {state!r} is negative)"
                )
        return
    raise TypeError(
        "restricted elimination expects a top-level P or R operator, "
        f"got {formula!r}"
    )


class EliminationSnapshot:
    """A resumable partial elimination of a truncated corridor.

    Produced by :func:`corridor_elimination`: the partially eliminated
    sub-stochastic matrix (interior states removed, frontier states
    protected), the accumulated rewards, and enough identity — model
    fingerprint, formula, elimination order, kept-state set — to decide
    whether a later, wider corridor may resume from it.  Picklable, so
    :class:`~repro.checking.cache.CheckCache` can persist snapshots to
    its backing store and same-fingerprint jobs in other processes warm
    start from them.

    Soundness of resumption: only *interior* states — every admissible
    full-model successor **and** predecessor inside the kept set — are
    eliminated into a snapshot.  Eliminating an interior state never
    reads or writes an edge incident to a state outside the corridor,
    and corridors only ever grow, so a state interior to a corridor is
    interior to every wider one; the edges a wider corridor re-admits
    run exclusively between surviving states, and splicing them in
    afterwards commutes with the eliminations already performed.
    """

    def __init__(
        self,
        matrix: Dict[State, Dict[State, RationalFunction]],
        rewards: Dict[State, RationalFunction],
        eliminated: Iterable[State],
        kept: Iterable[State],
        fingerprint: str,
        formula: StateFormula,
        order: str,
    ):
        self.matrix = {s: dict(row) for s, row in matrix.items()}
        self.rewards = dict(rewards)
        self.eliminated = frozenset(eliminated)
        self.kept = frozenset(kept)
        self.fingerprint = fingerprint
        self.formula = formula
        self.order = order

    def resumes(
        self, fingerprint: str, formula: StateFormula, order: str, kept: Set[State]
    ) -> bool:
        """Whether a corridor ``kept`` of the same reduction may resume here."""
        return (
            self.fingerprint == fingerprint
            and self.formula == formula
            and self.order == order
            and self.kept <= kept
        )

    def __repr__(self) -> str:
        return (
            f"EliminationSnapshot(kept={len(self.kept)}, "
            f"eliminated={len(self.eliminated)})"
        )


def _corridor_value_sets(model: ParametricDTMC, formula: StateFormula):
    """(targets, allowed, reward_mode) for a validated corridor formula."""
    if isinstance(formula, ProbabilisticOperator):
        path = formula.path  # _validate guarantees an Until/Eventually
        targets = set(
            label_satisfaction_set(model.states, model.labels, path.right)
        )
        allowed = set(
            label_satisfaction_set(model.states, model.labels, path.left)
        )
        return targets, allowed, False
    targets = set(
        label_satisfaction_set(model.states, model.labels, formula.path.right)
    )
    return targets, None, True


def corridor_elimination(
    model: ParametricDTMC,
    formula: StateFormula,
    restriction: Iterable[State],
    snapshot: Optional[EliminationSnapshot] = None,
    order: str = "min-degree",
    stats: Optional[Dict[str, int]] = None,
):
    """Eliminate the truncated corridor, resuming from ``snapshot``.

    Computes the same closed form as ``parametric_constraint(
    restricted_model(model, restriction), formula)`` — identical value
    at every parameter point — but by order-aware state elimination,
    and *incrementally*: interior corridor states (all admissible
    full-model neighbours inside the corridor) are eliminated into a
    reusable :class:`EliminationSnapshot`, frontier states stay
    protected, and a compatible snapshot of a narrower corridor seeds
    the matrix so only newly admitted states (plus their fill-in
    neighbourhood and the frontier) are worked on.

    Returns ``(constraint, snapshot)``.  The snapshot is ``None`` when
    there is nothing to resume: step-bounded paths (a fixed number of
    symbolic iterations, no elimination) and corridors whose truncated
    probability is structurally zero or one.

    ``stats``, when given, additionally accumulates the
    :meth:`ParametricDTMC._eliminate` counters plus ``resumed`` (1 when
    a snapshot was actually reused).
    """
    _validate_restriction_direction(model, formula)
    counters = stats if stats is not None else {}
    if (
        isinstance(formula, ProbabilisticOperator)
        and formula.path.step_bound is not None
    ):
        # Bounded until needs no elimination — nothing to snapshot.
        constraint = parametric_constraint(
            restricted_model(model, restriction), formula
        )
        return constraint, None
    targets, allowed, reward_mode = _corridor_value_sets(model, formula)
    initial = model.initial_state
    if initial in targets:
        value = (
            RationalFunction.zero() if reward_mode else RationalFunction.one()
        )
        return (
            ParametricConstraint(value, formula.comparison, formula.bound),
            None,
        )
    state_set = set(model.states)
    kept = (set(restriction) & state_set) | {initial}
    if allowed is not None:
        kept = {
            s for s in kept if s in targets or s in allowed or s == initial
        }
    kept_targets = targets & kept

    # Structural pre-checks on the truncation, mirroring the scratch
    # paths (`_restricted_matrix` / `expected_reward`) exactly.
    rows = {
        s: [t for t in model.transitions[s] if t in kept] for s in kept
    }
    preds: Dict[State, list] = {s: [] for s in kept}
    for s, succs in rows.items():
        for t in succs:
            preds[t].append(s)
    can_reach = set(kept_targets)
    stack = list(kept_targets)
    while stack:
        s = stack.pop()
        for u in preds[s]:
            if u in can_reach:
                continue
            if allowed is not None and u not in allowed and u not in targets:
                continue
            can_reach.add(u)
            stack.append(u)
    if reward_mode:
        seen = {initial}
        stack = [initial]
        while stack:
            s = stack.pop()
            if s in targets:
                continue
            for t in rows[s]:
                if t not in seen:
                    seen.add(t)
                    stack.append(t)
        stuck = seen - can_reach
        if stuck:
            raise ValueError(
                "expected reward is infinite: states "
                f"{sorted(map(str, stuck))} reachable from the initial state "
                "cannot reach the target"
            )
        if initial not in can_reach:
            raise ValueError("initial state cannot reach the target")
    elif initial not in can_reach:
        # No allowed corridor path from the initial state to a target:
        # the truncated probability is structurally zero.
        return (
            ParametricConstraint(
                RationalFunction.zero(), formula.comparison, formula.bound
            ),
            None,
        )

    from repro.checking.cache import parametric_fingerprint

    fingerprint = parametric_fingerprint(model)
    zero = RationalFunction.zero()

    def fresh_row(s: State) -> Dict[State, RationalFunction]:
        if s in targets:
            return {}
        return {t: f for t, f in model.transitions[s].items() if t in kept}

    if snapshot is not None and snapshot.resumes(
        fingerprint, formula, order, kept
    ):
        matrix = {s: dict(row) for s, row in snapshot.matrix.items()}
        rewards = dict(snapshot.rewards)
        eliminated = set(snapshot.eliminated)
        new_states = kept - snapshot.kept
        for s in new_states:
            matrix[s] = fresh_row(s)
            rewards[s] = model.state_rewards[s] if reward_mode else zero
        # Re-admit the edges the narrower corridor truncated: surviving
        # old states may point at newly admitted ones.  (Eliminated
        # states were interior — they had no such edges.)
        for s in snapshot.kept - eliminated:
            if s in targets:
                continue
            row = model.transitions[s]
            for t in new_states:
                if t in row:
                    matrix[s][t] = row[t]
        counters["resumed"] = counters.get("resumed", 0) + 1
    else:
        matrix = {s: fresh_row(s) for s in kept}
        rewards = {
            s: (model.state_rewards[s] if reward_mode else zero) for s in kept
        }
        eliminated = set()

    # Frontier: corridor states with an admissible full-model neighbour
    # outside the corridor.  A wider corridor may re-admit their edges,
    # so they must survive into the snapshot; everything else is
    # interior and safe to eliminate once and for all.
    admissible = state_set if allowed is None else (allowed | targets | {initial})
    full_preds: Dict[State, Set[State]] = {}
    for s, row in model.transitions.items():
        for t in row:
            full_preds.setdefault(t, set()).add(s)
    snapshot_protected = {initial} | kept_targets
    for s in kept:
        if s in snapshot_protected or s in eliminated:
            continue
        boundary = any(
            t not in kept and t in admissible for t in model.transitions[s]
        ) or any(
            u not in kept and u in admissible for u in full_preds.get(s, ())
        )
        if boundary:
            snapshot_protected.add(s)

    _ANALYSIS_COUNTER["count"] += 1
    before = set(matrix)
    ParametricDTMC._eliminate(
        matrix, rewards, snapshot_protected, order=order, stats=counters
    )
    eliminated |= before - set(matrix)
    produced = EliminationSnapshot(
        matrix, rewards, eliminated, kept, fingerprint, formula, order
    )

    # Finish on a copy: fold the protected frontier down to the initial
    # state and the targets for the closed form, leaving the snapshot
    # resumable.
    final_matrix = {s: dict(row) for s, row in matrix.items()}
    final_rewards = dict(rewards)
    ParametricDTMC._eliminate(
        final_matrix,
        final_rewards,
        {initial} | kept_targets,
        order=order,
        stats=counters,
    )
    row = final_matrix[initial]
    self_loop = row.get(initial, zero)
    denominator = RationalFunction.one() - self_loop
    if reward_mode:
        if denominator.is_zero():
            raise ValueError(
                "expected reward is infinite: the initial state's residual "
                "self-loop is structurally 1 (absorbing non-target state)"
            )
        function = final_rewards[initial] / denominator
    else:
        numerator = zero
        for t in kept_targets:
            if t in row:
                numerator = numerator + row[t]
        function = zero if denominator.is_zero() else numerator / denominator
    constraint = ParametricConstraint(function, formula.comparison, formula.bound)
    return constraint, produced


def restricted_constraint(
    model: ParametricDTMC,
    formula: StateFormula,
    restriction: Iterable[State],
    cache=None,
    order: str = "min-degree",
    snapshot: Optional[EliminationSnapshot] = None,
    with_snapshot: bool = False,
):
    """Eliminate only the ``restriction`` subchain of ``model |= formula``.

    Returns the :class:`ParametricConstraint` of the sub-stochastic
    truncation (see :func:`restricted_model`) — a *relaxation* of the
    full constraint: every assignment satisfying the full formula
    satisfies it, so adding it to a repair never cuts off true repairs,
    and its infeasibility implies the full problem's.  The reduction is
    performed by :func:`corridor_elimination` with the given ``order``
    and is memoized through
    :class:`~repro.checking.cache.CheckCache` under the model
    fingerprint plus the sorted corridor, so re-localizing the same
    evidence subchain is free — in this process or, with a persistent
    backing, across processes.

    ``snapshot`` seeds an incremental re-elimination when it matches a
    narrower corridor of the same reduction; ``with_snapshot=True``
    returns ``(constraint, snapshot)`` so callers (the CEGIS loop) can
    thread the partial elimination into the next, wider corridor.

    Raises ``ValueError`` for directions truncation does not preserve:
    lower bounds, ``G`` paths, and parametric or negative rewards.
    """
    _validate_restriction_direction(model, formula)
    from repro.checking.cache import get_cache

    constraint, produced = get_cache(cache).corridor_constraint(
        model, formula, restriction, order=order, snapshot=snapshot
    )
    if with_snapshot:
        return constraint, produced
    return constraint
