"""Result objects returned by the model checkers."""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Optional

State = Hashable


class ModelCheckingResult:
    """Outcome of checking one PCTL state formula on a model.

    Attributes
    ----------
    holds:
        Whether the model's initial state satisfies the formula
        (the paper's ``M |= φ``).
    satisfaction_set:
        All states satisfying the formula.
    value:
        When the top-level operator is ``P`` or ``R``: the quantitative
        value at the initial state (a probability or an expected reward;
        may be ``inf`` for rewards).  ``None`` for purely boolean
        formulas.
    values:
        Per-state quantitative values (same caveats), or ``None``.
    """

    def __init__(
        self,
        holds: bool,
        satisfaction_set: FrozenSet[State],
        value: Optional[float] = None,
        values: Optional[Dict[State, float]] = None,
    ):
        self.holds = bool(holds)
        self.satisfaction_set = frozenset(satisfaction_set)
        self.value = value
        self.values = dict(values) if values is not None else None

    def __bool__(self) -> bool:
        return self.holds

    def __repr__(self) -> str:
        quantitative = f", value={self.value:.6g}" if self.value is not None else ""
        return (
            f"ModelCheckingResult(holds={self.holds}, "
            f"|sat|={len(self.satisfaction_set)}{quantitative})"
        )
