"""Memoization layer for concrete and parametric model checking.

Repair is an optimisation loop: ``ModelRepair``/``DataRepair`` re-check
the *same* formula against the *same* model (or its parametric lift)
many times — once per multi-start NLP solve, once per candidate
verification.  The expensive pieces (parametric state elimination,
linear solves) depend only on the model's content and the formula, so a
content-addressed cache turns every repeat into a dictionary lookup.

``CheckCache`` keys entries by

* ``(model fingerprint, formula, engine)`` for concrete checking
  results (:func:`repro.checking.matrix.model_fingerprint` — SHA-256 of
  state order, transition bytes, rewards and labelling), and
* ``("parametric", parametric fingerprint, formula, method)`` for the
  closed-form :class:`~repro.checking.parametric.ParametricConstraint`
  produced by state elimination / fraction-free Gauss, and
* ``("corridor", parametric fingerprint, formula, order, sorted
  corridor)`` for corridor-restricted constraints, with the companion
  ``("corridor-snapshot", …)`` key holding the resumable
  :class:`~repro.checking.parametric.EliminationSnapshot` so warm runs
  and wider corridors skip the interior re-elimination.

Mutating a model never invalidates a *wrong* entry: models are
effectively immutable (updates go through ``with_transitions`` /
``with_rewards``, which build new objects), and the fingerprint is
recomputed from content, so a changed model simply maps to a fresh key.

PCTL formula objects define structural ``__eq__``/``__hash__``, so they
are used directly as key components.
"""

from __future__ import annotations

import hashlib
import time
from typing import Callable, Dict, Hashable, Iterable, Optional, Tuple

from repro.checking.matrix import model_fingerprint
from repro.checking.parametric import (
    EliminationSnapshot,
    ParametricConstraint,
    ParametricDTMC,
    corridor_elimination,
    parametric_constraint,
)
from repro.logic.pctl import StateFormula

Key = Tuple[Hashable, ...]


class CheckCache:
    """Content-addressed LRU memo for checking results.

    The memo is bounded: once ``max_entries`` is reached the least
    recently *used* entry is evicted (a hit refreshes recency), so a
    long batch sweep cannot grow memory without bound while the hot
    ``(model, φ)`` pairs of an active repair stay resident.  An optional
    ``backing`` store (any object with ``get(key) -> value | None`` and
    ``put(key, value)``, e.g. :class:`repro.service.store.ResultStore`)
    turns the cache into a write-through layer over a persistent store,
    so identical work is shared across processes and across runs.

    Examples
    --------
    >>> cache = CheckCache()
    >>> cache.get_or_compute(("k",), lambda: 42)
    42
    >>> cache.get_or_compute(("k",), lambda: 0)  # hit, thunk not called
    42
    >>> cache.stats()
    {'hits': 1, 'misses': 1, 'entries': 1, 'evictions': 0, 'backing_hits': 0, 'parametric_eliminations': 0, 'elimination_states': 0, 'elimination_fill_in': 0, 'elimination_reuse_hits': 0, 'elimination_ms': 0}
    """

    def __init__(self, max_entries: int = 4096, backing=None):
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self._store: Dict[Key, object] = {}
        self.max_entries = max_entries
        self.backing = backing
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.backing_hits = 0
        self.parametric_eliminations = 0
        #: Elimination-effort counters (states removed, fill-in entries
        #: created, corridor/snapshot reuses, wall-clock milliseconds) —
        #: surfaced in ``RepairResult.solver_stats`` and the runtime
        #: telemetry deltas.
        self.elimination_states = 0
        self.elimination_fill_in = 0
        self.elimination_reuse_hits = 0
        self.elimination_ms = 0.0

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def _insert(self, key: Key, value: object) -> None:
        if key not in self._store and len(self._store) >= self.max_entries:
            # Evict the least recently used entry (hits re-append, so the
            # front of the insertion-ordered dict is the coldest key).
            self._store.pop(next(iter(self._store)))
            self.evictions += 1
        self._store[key] = value

    def get_or_compute(self, key: Key, compute: Callable[[], object]) -> object:
        """The cached value under ``key``, computing (and storing) on miss."""
        if key in self._store:
            self.hits += 1
            # Refresh recency: move the key to the back of the dict.
            value = self._store.pop(key)
            self._store[key] = value
            return value
        if self.backing is not None:
            stored = self.backing.get(key)
            if stored is not None:
                self.hits += 1
                self.backing_hits += 1
                self._insert(key, stored)
                return stored
        self.misses += 1
        value = compute()
        self._insert(key, value)
        if self.backing is not None:
            self.backing.put(key, value)
        return value

    def _lookup(self, key: Key) -> Optional[object]:
        """Like :meth:`get_or_compute` without the compute: ``None`` on miss.

        A hit counts (and refreshes recency) exactly as in
        :meth:`get_or_compute`; a miss counts nothing — the caller
        decides whether a computation follows.
        """
        if key in self._store:
            self.hits += 1
            value = self._store.pop(key)
            self._store[key] = value
            return value
        if self.backing is not None:
            stored = self.backing.get(key)
            if stored is not None:
                self.hits += 1
                self.backing_hits += 1
                self._insert(key, stored)
                return stored
        return None

    def clear(self) -> None:
        """Drop every entry and reset the counters (backing is untouched)."""
        self._store.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.backing_hits = 0
        self.parametric_eliminations = 0
        self.elimination_states = 0
        self.elimination_fill_in = 0
        self.elimination_reuse_hits = 0
        self.elimination_ms = 0.0

    def stats(self) -> Dict[str, int]:
        """Hit/miss/size counters (used by the cache-reuse assertions)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._store),
            "evictions": self.evictions,
            "backing_hits": self.backing_hits,
            "parametric_eliminations": self.parametric_eliminations,
            "elimination_states": self.elimination_states,
            "elimination_fill_in": self.elimination_fill_in,
            "elimination_reuse_hits": self.elimination_reuse_hits,
            "elimination_ms": int(self.elimination_ms),
        }

    def __len__(self) -> int:
        return len(self._store)

    # ------------------------------------------------------------------
    # Domain-specific helpers
    # ------------------------------------------------------------------
    def concrete_key(self, model, formula: StateFormula, engine: str) -> Key:
        """Key for a concrete checking result."""
        return (model_fingerprint(model), formula, engine)

    def parametric_key(
        self, model: ParametricDTMC, formula: StateFormula, method: str
    ) -> Key:
        """Key for a parametric state-elimination closed form."""
        return ("parametric", parametric_fingerprint(model), formula, method)

    def _record_elimination(self, stats: Dict[str, int], seconds: float) -> None:
        self.parametric_eliminations += 1
        self.elimination_states += int(stats.get("eliminated", 0))
        self.elimination_fill_in += int(stats.get("fill_in", 0))
        self.elimination_ms += seconds * 1000.0

    def parametric_constraint(
        self,
        model: ParametricDTMC,
        formula: StateFormula,
        method: str = "gauss",
        order: str = "min-degree",
    ) -> ParametricConstraint:
        """Memoised :func:`repro.checking.parametric.parametric_constraint`.

        Repeated calls with a content-identical model and the same
        formula perform exactly one symbolic reduction; later calls are
        cache hits (observable through :meth:`stats`).  The
        ``parametric_eliminations`` counter records how many eliminations
        this cache actually performed — a warm persistent store keeps it
        at zero across whole batches.

        ``order`` picks the elimination order for ``method="eliminate"``
        (``"gauss"`` ignores it).  It is deliberately absent from the
        key: every order produces the same closed form, so whichever
        runs first is the one shared.
        """
        key = self.parametric_key(model, formula, method)

        def eliminate() -> ParametricConstraint:
            stats: Dict[str, int] = {}
            started = time.perf_counter()
            constraint = parametric_constraint(
                model, formula, method=method, order=order, stats=stats
            )
            self._record_elimination(stats, time.perf_counter() - started)
            # Pre-compile the numpy kernel and the one-row stacked kernel
            # so both are memoised (and, with a persistent backing,
            # pickled) beside the elimination — warm runs then skip the
            # elimination *and* every compilation.
            constraint.compiled()
            constraint.stacked()
            return constraint

        return self.get_or_compute(key, eliminate)

    def corridor_key(
        self,
        model: ParametricDTMC,
        formula: StateFormula,
        restriction: Iterable,
        order: str,
    ) -> Key:
        """Key for a corridor-restricted constraint (sorted corridor)."""
        corridor = tuple(sorted(repr(state) for state in set(restriction)))
        return (
            "corridor",
            parametric_fingerprint(model),
            formula,
            order,
            corridor,
        )

    def corridor_constraint(
        self,
        model: ParametricDTMC,
        formula: StateFormula,
        restriction: Iterable,
        order: str = "min-degree",
        snapshot: Optional[EliminationSnapshot] = None,
    ) -> Tuple[ParametricConstraint, Optional[EliminationSnapshot]]:
        """Memoised :func:`repro.checking.parametric.corridor_elimination`.

        Returns ``(constraint, snapshot)``.  Constraint and snapshot are
        content-addressed under the model fingerprint plus the sorted
        corridor, write-through to any persistent backing — so a warm
        service run (or a same-fingerprint job in another process)
        reuses both without re-eliminating.  On a miss the reduction
        resumes from ``snapshot`` when it matches a narrower corridor of
        the same reduction; ``elimination_reuse_hits`` counts both exact
        corridor hits and snapshot-seeded resumptions.
        """
        key = self.corridor_key(model, formula, restriction, order)
        snapshot_key = ("corridor-snapshot",) + key[1:]
        cached = self._lookup(key)
        if cached is not None:
            self.elimination_reuse_hits += 1
            stored = self._lookup(snapshot_key)
            return cached, (stored if stored is not None else snapshot)
        self.misses += 1
        stats: Dict[str, int] = {}
        started = time.perf_counter()
        constraint, produced = corridor_elimination(
            model,
            formula,
            restriction,
            snapshot=snapshot,
            order=order,
            stats=stats,
        )
        self._record_elimination(stats, time.perf_counter() - started)
        if stats.get("resumed"):
            self.elimination_reuse_hits += 1
        constraint.compiled()
        constraint.stacked()
        self._insert(key, constraint)
        if self.backing is not None:
            self.backing.put(key, constraint)
        if produced is not None:
            self._insert(snapshot_key, produced)
            if self.backing is not None:
                self.backing.put(snapshot_key, produced)
        return constraint, produced

    def stacked_kernel(self, constraints):
        """Memoised fused kernel over an ordered constraint list.

        A single constraint reuses its own cached one-row kernel
        (:meth:`ParametricConstraint.stacked` — already pickled beside
        the elimination); multiple constraints build one
        :class:`~repro.symbolic.compile.StackedConstraintKernel` under a
        content-addressed key, so same-fingerprint repair problems (and
        same-fingerprint service jobs in a batch) share one compilation.
        """
        constraints = list(constraints)
        if not constraints:
            return None
        if len(constraints) == 1:
            return constraints[0].stacked()
        key: Key = ("stacked",) + tuple(
            (str(c.function), float(c._sign), float(c.bound))
            for c in constraints
        )

        def build():
            from repro.symbolic.compile import StackedConstraintKernel

            return StackedConstraintKernel(
                [(c.function, c._sign, c.bound) for c in constraints]
            )

        return self.get_or_compute(key, build)


def cached_check(
    model,
    formula: StateFormula,
    engine: str = "sparse",
    cache: Optional["CheckCache"] = None,
):
    """Memoised concrete model check (DTMC or MDP).

    Same contract as ``DTMCModelChecker(model, engine).check(formula)``
    (resp. ``MDPModelChecker``), but repeated checks of a
    content-identical model return the stored
    :class:`~repro.checking.result.ModelCheckingResult`.
    """
    from repro.checking.dtmc import DTMCModelChecker
    from repro.checking.mdp import MDPModelChecker
    from repro.mdp.model import DTMC

    store = get_cache(cache)
    key = store.concrete_key(model, formula, engine)
    checker_class = DTMCModelChecker if isinstance(model, DTMC) else MDPModelChecker
    return store.get_or_compute(
        key, lambda: checker_class(model, engine).check(formula)
    )


def parametric_fingerprint(model: ParametricDTMC) -> str:
    """Stable content fingerprint of a parametric chain.

    Rational functions print deterministically (sorted monomials with
    exact :class:`~fractions.Fraction` coefficients), so hashing the
    textual transition matrix — plus state order, initial state, rewards
    and labelling — identifies the model up to symbolic content.

    Memoised on the model object: parametric chains are immutable by
    convention (updates build new objects), and rendering every rational
    function is measurable on warm repairs that re-fingerprint the same
    lift each round.
    """
    cached = getattr(model, "_fingerprint", None)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    digest.update(repr(model.states).encode("utf-8"))
    digest.update(repr(model.initial_state).encode("utf-8"))
    for state in model.states:
        row = model.transitions[state]
        for target in row:
            digest.update(f"{target!r}->{row[target]!s}".encode("utf-8"))
            digest.update(b"\x01")
        digest.update(str(model.state_rewards[state]).encode("utf-8"))
        digest.update(repr(sorted(model.labels[state])).encode("utf-8"))
        digest.update(b"\x00")
    fingerprint = digest.hexdigest()
    try:
        model._fingerprint = fingerprint
    except AttributeError:  # slotted/frozen model stand-ins: skip the memo
        pass
    return fingerprint


#: Process-wide default cache; repairs share it so a ``ModelRepair`` and a
#: ``DataRepair`` over the same lifted model reuse one closed form.
GLOBAL_CACHE = CheckCache()


def get_cache(cache: Optional[CheckCache] = None) -> CheckCache:
    """``cache`` if given, else the process-wide :data:`GLOBAL_CACHE`."""
    return cache if cache is not None else GLOBAL_CACHE


def set_global_cache(cache: CheckCache) -> CheckCache:
    """Replace the process-wide cache (returns the previous one).

    Used by the batch service's worker processes to install a cache
    backed by the shared on-disk result store, so every repair in the
    process — including ones that default to the global cache — reads
    and writes the persistent layer.
    """
    global GLOBAL_CACHE
    previous = GLOBAL_CACHE
    GLOBAL_CACHE = cache
    return previous
