"""Sparse numeric backend for the checking stack.

Every checker in :mod:`repro.checking` historically walked the models'
``{source: {target: prob}}`` dictionaries state-by-state — the hot path
that dominates repair and verification cost at scale.  This module
extracts, **once per model**, a compressed-sparse-row (CSR) view:

``DTMCMatrix``
    state-index mapping, the row-stochastic transition matrix ``P`` as
    ``scipy.sparse.csr_matrix``, the reward vector, and the transposed
    structure used by the reverse-reachability fixpoints.
``MDPMatrix``
    the stacked choice matrix (one CSR row per enabled ``(state,
    action)`` pair), the per-state row-group offsets that let value
    iteration reduce over actions with ``np.maximum.reduceat``, and the
    per-choice reward vector.

Extraction is memoised on the model object itself (models are
effectively immutable), and every matrix carries a *fingerprint* —
a SHA-256 digest of the state order and the raw CSR transition bytes
(plus rewards and labelling, which quantitative results also depend on).
The fingerprint is the cache key used by
:class:`repro.checking.cache.CheckCache` to decide when two checks may
share a result.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np
from scipy import sparse

from repro.mdp.model import DTMC, MDP

State = Hashable
Action = Hashable

#: Attribute used to memoise the extracted matrix on the model object.
_CACHE_ATTRIBUTE = "_sparse_matrix_cache"


class DTMCMatrix:
    """CSR view of a :class:`~repro.mdp.model.DTMC`.

    Attributes
    ----------
    states:
        The chain's states in model order (index ``i`` ↔ ``states[i]``).
    index:
        ``{state: row index}``.
    P:
        ``num_states × num_states`` row-stochastic CSR matrix.
    rewards:
        State rewards as a dense vector in state order.
    fingerprint:
        SHA-256 hex digest of (state order, transition bytes, reward
        bytes, labelling) — the :class:`CheckCache` invalidation key.
    """

    def __init__(self, chain: DTMC):
        self.states: List[State] = list(chain.states)
        self.index: Dict[State, int] = dict(chain.index)
        n = len(self.states)
        data: List[float] = []
        indices: List[int] = []
        indptr = np.zeros(n + 1, dtype=np.int64)
        for i, state in enumerate(self.states):
            row = chain.transitions[state]
            for target, probability in row.items():
                indices.append(self.index[target])
                data.append(probability)
            indptr[i + 1] = len(indices)
        self.P = sparse.csr_matrix(
            (
                np.asarray(data, dtype=np.float64),
                np.asarray(indices, dtype=np.int64),
                indptr,
            ),
            shape=(n, n),
        )
        self.rewards = np.asarray(
            [chain.state_rewards[s] for s in self.states], dtype=np.float64
        )
        self.fingerprint = _digest(
            self.states,
            self.P,
            self.rewards,
            [sorted(chain.labels[s]) for s in self.states],
        )

    @property
    def num_states(self) -> int:
        return len(self.states)

    def mask(self, states) -> np.ndarray:
        """Boolean indicator vector of a state collection."""
        mask = np.zeros(self.num_states, dtype=bool)
        for state in states:
            mask[self.index[state]] = True
        return mask

    def unmask(self, mask: np.ndarray) -> frozenset:
        """The state set selected by a boolean indicator vector."""
        return frozenset(self.states[i] for i in np.flatnonzero(mask))

    def values_dict(self, vector: np.ndarray) -> Dict[State, float]:
        """A per-state dictionary view of a dense value vector."""
        return {s: float(vector[i]) for i, s in enumerate(self.states)}


class MDPMatrix:
    """Stacked-choice CSR view of an :class:`~repro.mdp.model.MDP`.

    The matrix has one row per enabled ``(state, action)`` pair
    ("choice"), in state order with the model's action enumeration order
    within each state.  ``row_groups`` holds the choice-offset of every
    state (length ``num_states + 1``), so per-state min/max over actions
    is ``np.minimum.reduceat(choice_values, row_groups[:-1])``.
    """

    def __init__(self, mdp: MDP):
        self.states: List[State] = list(mdp.states)
        self.index: Dict[State, int] = dict(mdp.index)
        n = len(self.states)
        data: List[float] = []
        indices: List[int] = []
        indptr: List[int] = [0]
        row_groups = np.zeros(n + 1, dtype=np.int64)
        choice_actions: List[Action] = []
        choice_rewards: List[float] = []
        for i, state in enumerate(self.states):
            for action, row in mdp.transitions[state].items():
                for target, probability in row.items():
                    indices.append(self.index[target])
                    data.append(probability)
                indptr.append(len(indices))
                choice_actions.append(action)
                choice_rewards.append(mdp.reward(state, action))
            row_groups[i + 1] = len(choice_actions)
        self.P = sparse.csr_matrix(
            (
                np.asarray(data, dtype=np.float64),
                np.asarray(indices, dtype=np.int64),
                np.asarray(indptr, dtype=np.int64),
            ),
            shape=(len(choice_actions), n),
        )
        self.row_groups = row_groups
        self.choice_actions = choice_actions
        self.choice_rewards = np.asarray(choice_rewards, dtype=np.float64)
        self.state_rewards = np.asarray(
            [mdp.state_rewards[s] for s in self.states], dtype=np.float64
        )
        self.fingerprint = _digest(
            self.states,
            self.P,
            self.choice_rewards,
            [sorted(mdp.labels[s]) for s in self.states],
            [repr(a) for a in choice_actions],
            row_groups.tobytes(),
        )

    @property
    def num_states(self) -> int:
        return len(self.states)

    @property
    def num_choices(self) -> int:
        return self.P.shape[0]

    def mask(self, states) -> np.ndarray:
        """Boolean indicator vector of a state collection."""
        mask = np.zeros(self.num_states, dtype=bool)
        for state in states:
            mask[self.index[state]] = True
        return mask

    def unmask(self, mask: np.ndarray) -> frozenset:
        """The state set selected by a boolean indicator vector."""
        return frozenset(self.states[i] for i in np.flatnonzero(mask))

    def values_dict(self, vector: np.ndarray) -> Dict[State, float]:
        """A per-state dictionary view of a dense value vector."""
        return {s: float(vector[i]) for i, s in enumerate(self.states)}

    def any_choice(self, choice_mask: np.ndarray) -> np.ndarray:
        """Per-state OR over a boolean per-choice vector."""
        return np.logical_or.reduceat(choice_mask, self.row_groups[:-1])

    def all_choices(self, choice_mask: np.ndarray) -> np.ndarray:
        """Per-state AND over a boolean per-choice vector."""
        return np.logical_and.reduceat(choice_mask, self.row_groups[:-1])

    def max_choice(self, choice_values: np.ndarray) -> np.ndarray:
        """Per-state max over a per-choice value vector."""
        return np.maximum.reduceat(choice_values, self.row_groups[:-1])

    def min_choice(self, choice_values: np.ndarray) -> np.ndarray:
        """Per-state min over a per-choice value vector."""
        return np.minimum.reduceat(choice_values, self.row_groups[:-1])


# ----------------------------------------------------------------------
# Extraction (memoised on the model object)
# ----------------------------------------------------------------------
def get_dtmc_matrix(chain: DTMC) -> DTMCMatrix:
    """The chain's CSR view, built once and cached on the instance."""
    cached = getattr(chain, _CACHE_ATTRIBUTE, None)
    if cached is None:
        cached = DTMCMatrix(chain)
        setattr(chain, _CACHE_ATTRIBUTE, cached)
    return cached


def get_mdp_matrix(mdp: MDP) -> MDPMatrix:
    """The MDP's stacked-choice CSR view, built once per instance."""
    cached = getattr(mdp, _CACHE_ATTRIBUTE, None)
    if cached is None:
        cached = MDPMatrix(mdp)
        setattr(mdp, _CACHE_ATTRIBUTE, cached)
    return cached


def model_fingerprint(model) -> str:
    """Stable content fingerprint of a DTMC or MDP.

    Two models share a fingerprint exactly when they have the same state
    order, transition structure/probabilities, rewards and labelling —
    the inputs every checker result depends on.
    """
    if isinstance(model, DTMC):
        return get_dtmc_matrix(model).fingerprint
    if isinstance(model, MDP):
        return get_mdp_matrix(model).fingerprint
    raise TypeError(f"cannot fingerprint {type(model).__name__}")


# ----------------------------------------------------------------------
# Vectorised reachability fixpoints (shared by graph.py)
# ----------------------------------------------------------------------
def reach_backward(
    P: sparse.csr_matrix,
    targets: np.ndarray,
    allowed: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Backward closure of ``targets`` through ``allowed`` states.

    Every stored probability is positive, so ``P @ reached > 0`` marks
    exactly the states with a one-step successor already in the reached
    set; intersecting with ``allowed`` and iterating to a fixpoint gives
    the same result as the dense engine's dictionary BFS, one sparse
    mat-vec per frontier level.
    """
    reached = targets.copy()
    while True:
        reachable = (P @ reached.astype(np.float64)) > 0
        if allowed is not None:
            reachable &= allowed
        grown = reached | reachable
        grown |= targets
        if np.array_equal(grown, reached):
            return reached
        reached = grown


def _digest(*parts) -> str:
    """SHA-256 over a heterogeneous list of fingerprint components."""
    digest = hashlib.sha256()
    for part in parts:
        if isinstance(part, sparse.csr_matrix):
            digest.update(part.indptr.tobytes())
            digest.update(part.indices.tobytes())
            digest.update(part.data.tobytes())
        elif isinstance(part, np.ndarray):
            digest.update(part.tobytes())
        elif isinstance(part, bytes):
            digest.update(part)
        else:
            digest.update(repr(part).encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()
