"""PCTL model checking for discrete-time Markov chains.

The checker computes satisfaction sets bottom-up over the formula
structure.  Quantitative sub-results (until-probabilities, expected
rewards) use the standard pipeline: qualitative prob0/prob1 graph
precomputation, then an exact linear solve on the remaining states.

Two numeric engines are available (``engine=`` on the constructor):
``"sparse"`` (default) extracts the chain's CSR matrix once via
:mod:`repro.checking.matrix` and solves with ``scipy.sparse``;
``"dense"`` is the original dictionary/``np.linalg`` reference path.

This replaces the concrete-model role PRISM plays in the paper.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Set

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import spsolve

from repro.checking.graph import _check_engine, prob0_states, prob1_states
from repro.checking.matrix import get_dtmc_matrix
from repro.checking.result import ModelCheckingResult
from repro.logic.pctl import (
    And,
    CumulativeRewardOperator,
    SteadyStateOperator,
    AtomicProposition,
    Eventually,
    FalseFormula,
    Globally,
    Implies,
    Next,
    Not,
    Or,
    PathFormula,
    ProbabilisticOperator,
    RewardOperator,
    StateFormula,
    TrueFormula,
    Until,
    check_comparison,
)
from repro.mdp.model import DTMC
from repro.mdp.solvers import expected_total_reward

State = Hashable


class DTMCModelChecker:
    """Checks PCTL formulas on a :class:`~repro.mdp.DTMC`.

    Examples
    --------
    >>> from repro.mdp import chain_dtmc
    >>> from repro.logic import parse_pctl
    >>> checker = DTMCModelChecker(chain_dtmc(5, forward_probability=0.9))
    >>> checker.check(parse_pctl('P>=0.5 [ F "goal" ]')).holds
    True
    """

    def __init__(self, chain: DTMC, engine: str = "sparse"):
        _check_engine(engine)
        self.chain = chain
        self.engine = engine

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def check(self, formula: StateFormula) -> ModelCheckingResult:
        """Check ``formula``; ``result.holds`` is satisfaction at ``s0``."""
        sat = self.satisfaction_set(formula)
        value = None
        values = None
        if isinstance(formula, ProbabilisticOperator):
            values = self.path_probabilities(formula.path)
            value = values[self.chain.initial_state]
        elif isinstance(formula, RewardOperator):
            values = self.expected_rewards(formula)
            value = values[self.chain.initial_state]
        elif isinstance(formula, SteadyStateOperator):
            values = self.steady_state_values(formula.operand)
            value = values[self.chain.initial_state]
        elif isinstance(formula, CumulativeRewardOperator):
            values = self.cumulative_rewards(formula.steps)
            value = values[self.chain.initial_state]
        return ModelCheckingResult(
            holds=self.chain.initial_state in sat,
            satisfaction_set=sat,
            value=value,
            values=values,
        )

    def satisfaction_set(self, formula: StateFormula) -> FrozenSet[State]:
        """All states satisfying a state formula."""
        if isinstance(formula, TrueFormula):
            return frozenset(self.chain.states)
        if isinstance(formula, FalseFormula):
            return frozenset()
        if isinstance(formula, AtomicProposition):
            return self.chain.states_with_atom(formula.name)
        if isinstance(formula, Not):
            return frozenset(self.chain.states) - self.satisfaction_set(
                formula.operand
            )
        if isinstance(formula, And):
            return self.satisfaction_set(formula.left) & self.satisfaction_set(
                formula.right
            )
        if isinstance(formula, Or):
            return self.satisfaction_set(formula.left) | self.satisfaction_set(
                formula.right
            )
        if isinstance(formula, Implies):
            return (
                frozenset(self.chain.states) - self.satisfaction_set(formula.left)
            ) | self.satisfaction_set(formula.right)
        if isinstance(formula, ProbabilisticOperator):
            probabilities = self.path_probabilities(formula.path)
            return frozenset(
                s
                for s in self.chain.states
                if check_comparison(
                    formula.comparison, probabilities[s], formula.bound
                )
            )
        if isinstance(formula, RewardOperator):
            rewards = self.expected_rewards(formula)
            return frozenset(
                s
                for s in self.chain.states
                if check_comparison(formula.comparison, rewards[s], formula.bound)
            )
        if isinstance(formula, SteadyStateOperator):
            values = self.steady_state_values(formula.operand)
            return frozenset(
                s
                for s in self.chain.states
                if check_comparison(formula.comparison, values[s], formula.bound)
            )
        if isinstance(formula, CumulativeRewardOperator):
            values = self.cumulative_rewards(formula.steps)
            return frozenset(
                s
                for s in self.chain.states
                if check_comparison(formula.comparison, values[s], formula.bound)
            )
        raise TypeError(f"unsupported state formula {formula!r}")

    # ------------------------------------------------------------------
    # Quantitative operators
    # ------------------------------------------------------------------
    def path_probabilities(self, path: PathFormula) -> Dict[State, float]:
        """``Pr_s(ψ)`` for every state ``s``."""
        if isinstance(path, Next):
            return self._next_probabilities(path)
        if isinstance(path, Globally):
            # Pr(G φ) = 1 − Pr(F ¬φ), also for the bounded variant.
            dual = Eventually(Not(path.operand), path.step_bound)
            complement = self.path_probabilities(dual)
            return {s: 1.0 - p for s, p in complement.items()}
        if isinstance(path, Until):
            if path.step_bound is None:
                return self._until_probabilities(path)
            return self._bounded_until_probabilities(path)
        raise TypeError(f"unsupported path formula {path!r}")

    def _next_probabilities(self, path: Next) -> Dict[State, float]:
        sat = self.satisfaction_set(path.operand)
        if self.engine == "sparse":
            matrix = get_dtmc_matrix(self.chain)
            vector = matrix.P @ matrix.mask(sat).astype(np.float64)
            return matrix.values_dict(vector)
        return {
            s: sum(p for t, p in self.chain.transitions[s].items() if t in sat)
            for s in self.chain.states
        }

    def _until_probabilities(self, path: Until) -> Dict[State, float]:
        left = self.satisfaction_set(path.left)
        right = self.satisfaction_set(path.right)
        allowed = set(left) | set(right)
        zero = prob0_states(self.chain, right, allowed=allowed, engine=self.engine)
        one = prob1_states(self.chain, right, allowed=allowed, engine=self.engine)
        if self.engine == "sparse":
            matrix = get_dtmc_matrix(self.chain)
            one_mask = matrix.mask(one)
            unknown = ~(one_mask | matrix.mask(zero))
            values = one_mask.astype(np.float64)
            if unknown.any():
                rows = np.flatnonzero(unknown)
                restricted = matrix.P[rows]
                system = (
                    sparse.identity(len(rows), format="csc")
                    - restricted[:, rows].tocsc()
                )
                rhs = np.asarray(
                    restricted[:, np.flatnonzero(one_mask)].sum(axis=1)
                ).ravel()
                solution = np.atleast_1d(spsolve(system, rhs))
                values[rows] = np.clip(solution, 0.0, 1.0)
            return matrix.values_dict(values)
        values: Dict[State, float] = {}
        unknown = []
        for state in self.chain.states:
            if state in one:
                values[state] = 1.0
            elif state in zero:
                values[state] = 0.0
            else:
                unknown.append(state)
        if unknown:
            idx = {s: i for i, s in enumerate(unknown)}
            n = len(unknown)
            matrix = np.eye(n)
            vector = np.zeros(n)
            for state in unknown:
                i = idx[state]
                for target, prob in self.chain.transitions[state].items():
                    if target in idx:
                        matrix[i, idx[target]] -= prob
                    elif target in one:
                        vector[i] += prob
            solution = np.linalg.solve(matrix, vector)
            for state in unknown:
                values[state] = float(np.clip(solution[idx[state]], 0.0, 1.0))
        return values

    def _bounded_until_probabilities(self, path: Until) -> Dict[State, float]:
        left = self.satisfaction_set(path.left)
        right = self.satisfaction_set(path.right)
        # x_s^0 = [s ∈ right];  x_s^{k+1} = [s∈right] + [s∈left\right]·Σ P x^k
        if self.engine == "sparse":
            matrix = get_dtmc_matrix(self.chain)
            right_mask = matrix.mask(right)
            propagate = matrix.mask(left) & ~right_mask
            values = right_mask.astype(np.float64)
            for _ in range(path.step_bound):
                stepped = matrix.P @ values
                values = np.where(
                    right_mask, 1.0, np.where(propagate, stepped, 0.0)
                )
            return matrix.values_dict(values)
        values = {s: (1.0 if s in right else 0.0) for s in self.chain.states}
        for _ in range(path.step_bound):
            updated: Dict[State, float] = {}
            for state in self.chain.states:
                if state in right:
                    updated[state] = 1.0
                elif state in left:
                    updated[state] = sum(
                        prob * values[target]
                        for target, prob in self.chain.transitions[state].items()
                    )
                else:
                    updated[state] = 0.0
            values = updated
        return values

    def expected_rewards(self, formula: RewardOperator) -> Dict[State, float]:
        """``R[F φ]``: expected cumulative reward until reaching ``φ``."""
        targets: Set[State] = set(self.satisfaction_set(formula.path.right))
        if self.engine == "sparse":
            matrix = get_dtmc_matrix(self.chain)
            certain = prob1_states(self.chain, targets, engine=self.engine)
            target_mask = matrix.mask(targets)
            certain_mask = matrix.mask(certain)
            values = np.where(target_mask | certain_mask, 0.0, np.inf)
            unknown = certain_mask & ~target_mask
            if unknown.any():
                rows = np.flatnonzero(unknown)
                system = (
                    sparse.identity(len(rows), format="csc")
                    - matrix.P[rows][:, rows].tocsc()
                )
                solution = np.atleast_1d(spsolve(system, matrix.rewards[rows]))
                values[rows] = solution
            return matrix.values_dict(values)
        return expected_total_reward(self.chain, targets)

    def cumulative_rewards(self, steps: int) -> Dict[State, float]:
        """``R[C<=k]``: expected reward accumulated over ``k`` steps."""
        if self.engine == "sparse":
            matrix = get_dtmc_matrix(self.chain)
            values = np.zeros(matrix.num_states)
            for _ in range(steps):
                values = matrix.rewards + matrix.P @ values
            return matrix.values_dict(values)
        values = {s: 0.0 for s in self.chain.states}
        for _ in range(steps):
            values = {
                s: self.chain.state_rewards[s]
                + sum(
                    prob * values[target]
                    for target, prob in self.chain.transitions[s].items()
                )
                for s in self.chain.states
            }
        return values

    def steady_state_values(self, operand) -> Dict[State, float]:
        """``S[φ]``: long-run probability of being in ``Sat(φ)``."""
        from repro.checking.steady_state import steady_state_probabilities

        satisfying = set(self.satisfaction_set(operand))
        return steady_state_probabilities(
            self.chain, satisfying, engine=self.engine
        )
