"""Counterexample generation for violated reachability bounds.

When ``P <= b [φ1 U φ2]`` is violated, the classic evidence (Han &
Katoen) is a *smallest* set of finite paths, each satisfying the until
formula, whose probability mass together exceeds ``b``.  Best-first
search over path prefixes (ordered by probability) enumerates paths in
non-increasing probability order, so collecting them greedily yields a
minimal-cardinality evidence set.

Repair workflows use this to show *which* behaviours make a learned
model untrustworthy before deciding what to perturb; the CEGIS loop
(:mod:`repro.repair.cegis`) additionally uses the touched states to
restrict parametric elimination to the violating subchain.

Budget semantics: both searches charge the expansion budget only when a
prefix is *expanded* (its successors pushed).  Paths that already end in
a target are free to collect, so when the budget fires mid-search the
heap is still drained of every finished path before reporting — the
evidence mass is never silently under-reported by paths the search had
already found but not yet popped.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.checking.graph import backward_reachable
from repro.checking.parametric import label_satisfaction_set
from repro.logic.pctl import ProbabilisticOperator, Until
from repro.mdp.model import DTMC

State = Hashable


class Counterexample:
    """Evidence for a violated ``P <= b`` reachability bound.

    Attributes
    ----------
    paths:
        Evidence paths in non-increasing probability order, each ending
        in a target state.
    probabilities:
        The probability of each path.
    total_probability:
        Their sum — exceeds the violated bound when ``complete``.
    complete:
        Whether enough mass was collected to exceed the bound (the
        search budget can cut collection short on stiff models).
    expansions / max_expansions / max_paths:
        Search-effort diagnostics: prefixes expanded versus the budget,
        and the path-count cap, so callers can tell *why* an incomplete
        evidence set stopped growing.
    """

    def __init__(
        self,
        paths: List[Tuple[State, ...]],
        probabilities: List[float],
        bound: float,
        complete: bool,
        expansions: int = 0,
        max_expansions: int = 0,
        max_paths: int = 0,
    ):
        self.paths = paths
        self.probabilities = probabilities
        self.bound = bound
        self.complete = complete
        self.expansions = expansions
        self.max_expansions = max_expansions
        self.max_paths = max_paths

    @property
    def total_probability(self) -> float:
        """Accumulated probability mass of the evidence paths."""
        return float(sum(self.probabilities))

    def touched_states(self) -> Set[State]:
        """Every state on any evidence path."""
        return {state for path in self.paths for state in path}

    def to_dict(self) -> Dict:
        """JSON-ready payload; inverse of :meth:`from_dict`."""
        return {
            "paths": [list(path) for path in self.paths],
            "probabilities": [float(p) for p in self.probabilities],
            "bound": float(self.bound),
            "complete": bool(self.complete),
            "total_probability": self.total_probability,
            "expansions": int(self.expansions),
            "max_expansions": int(self.max_expansions),
            "max_paths": int(self.max_paths),
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "Counterexample":
        return cls(
            paths=[tuple(path) for path in payload["paths"]],
            probabilities=[float(p) for p in payload["probabilities"]],
            bound=float(payload["bound"]),
            complete=bool(payload["complete"]),
            expansions=int(payload.get("expansions", 0)),
            max_expansions=int(payload.get("max_expansions", 0)),
            max_paths=int(payload.get("max_paths", 0)),
        )

    def __len__(self) -> int:
        return len(self.paths)

    def __repr__(self) -> str:
        return (
            f"Counterexample(paths={len(self.paths)}, "
            f"mass={self.total_probability:.6g} > bound={self.bound:.6g}, "
            f"complete={self.complete})"
        )


class EvidenceSearch(List[Tuple[Tuple[State, ...], float]]):
    """Result of :func:`strongest_evidence_paths`.

    A plain list of ``(path, probability)`` pairs (existing callers
    index and iterate it unchanged) carrying the search diagnostics:
    ``complete`` is ``False`` exactly when the expansion budget cut
    collection short of the requested count, in which case
    ``total_probability`` is the partial mass actually enumerated.
    """

    def __init__(
        self,
        pairs: Sequence[Tuple[Tuple[State, ...], float]] = (),
        complete: bool = True,
        expansions: int = 0,
        max_expansions: int = 0,
    ):
        super().__init__(pairs)
        self.complete = complete
        self.expansions = expansions
        self.max_expansions = max_expansions

    @property
    def total_probability(self) -> float:
        """Probability mass of the collected paths."""
        return float(sum(probability for _, probability in self))

    def __repr__(self) -> str:
        return (
            f"EvidenceSearch(paths={len(self)}, "
            f"mass={self.total_probability:.6g}, complete={self.complete})"
        )


def strongest_evidence_paths(
    chain: DTMC,
    targets: Set[State],
    allowed: Optional[Set[State]] = None,
    count: int = 1,
    max_expansions: int = 100_000,
) -> EvidenceSearch:
    """The ``count`` most probable until-satisfying paths from ``s0``.

    Best-first (uniform-cost in −log probability) search over prefixes;
    prefixes leaving ``allowed`` before the targets are pruned.  Returns
    an :class:`EvidenceSearch` — list-compatible, with ``complete=False``
    when the expansion budget stopped collection before ``count`` paths
    (or the full path set) were enumerated.
    """
    allowed = set(chain.states) if allowed is None else set(allowed)
    # Prune prefixes that can no longer reach the targets — without this,
    # non-target absorbing regions generate unbounded constant-probability
    # expansions.
    useful = backward_reachable(chain, targets, through=allowed)
    tie_breaker = itertools.count()
    heap: List[Tuple[float, int, Tuple[State, ...], float]] = []
    start = chain.initial_state
    heapq.heappush(heap, (-1.0, next(tie_breaker), (start,), 1.0))
    found: List[Tuple[Tuple[State, ...], float]] = []
    expansions = 0
    exhausted = False
    while heap and len(found) < count:
        _, _, path, probability = heapq.heappop(heap)
        state = path[-1]
        if state in targets:
            # Finished paths are free: collecting them does not charge
            # the budget, so an exhausted search still drains the heap
            # of everything it had already found.
            found.append((path, probability))
            continue
        if state not in allowed:
            continue
        if expansions >= max_expansions:
            exhausted = True
            continue
        expansions += 1
        for target, step in chain.transitions[state].items():
            extended = probability * step
            if extended <= 0.0 or target not in useful:
                continue
            heapq.heappush(
                heap,
                (-extended, next(tie_breaker), path + (target,), extended),
            )
    complete = len(found) >= count or not exhausted
    return EvidenceSearch(
        found,
        complete=complete,
        expansions=expansions,
        max_expansions=max_expansions,
    )


def counterexample(
    chain: DTMC,
    formula: ProbabilisticOperator,
    max_paths: int = 10_000,
    max_expansions: int = 200_000,
) -> Counterexample:
    """Evidence that an upper-bound until formula is violated.

    Raises ``ValueError`` when the formula is not an upper-bound
    (``<``/``<=``) until/eventually property — lower-bound violations
    have no finite-path evidence.
    """
    if formula.comparison not in ("<", "<="):
        raise ValueError("counterexamples exist for upper-bound formulas only")
    path_formula = formula.path
    if not isinstance(path_formula, Until) or path_formula.step_bound is not None:
        raise ValueError("counterexamples support unbounded until formulas")
    allowed = set(
        label_satisfaction_set(chain.states, chain.labels, path_formula.left)
    )
    targets = set(
        label_satisfaction_set(chain.states, chain.labels, path_formula.right)
    )
    useful = backward_reachable(chain, targets, through=allowed)
    tie_breaker = itertools.count()
    heap: List[Tuple[float, int, Tuple[State, ...], float]] = []
    heapq.heappush(heap, (-1.0, next(tie_breaker), (chain.initial_state,), 1.0))
    paths: List[Tuple[State, ...]] = []
    probabilities: List[float] = []
    mass = 0.0
    expansions = 0
    while heap and mass <= formula.bound and len(paths) < max_paths:
        _, _, path, probability = heapq.heappop(heap)
        state = path[-1]
        if state in targets:
            # Free to collect (see module docstring): a budget-cut
            # search still reports every finished path in the heap.
            paths.append(path)
            probabilities.append(probability)
            mass += probability
            continue
        if state not in allowed:
            continue
        if expansions >= max_expansions:
            continue
        expansions += 1
        for target, step in chain.transitions[state].items():
            extended = probability * step
            if extended <= 0.0 or target not in useful:
                continue
            heapq.heappush(
                heap,
                (-extended, next(tie_breaker), path + (target,), extended),
            )
    return Counterexample(
        paths=paths,
        probabilities=probabilities,
        bound=formula.bound,
        complete=mass > formula.bound,
        expansions=expansions,
        max_expansions=max_expansions,
        max_paths=max_paths,
    )
