"""Counterexample generation for violated reachability bounds.

When ``P <= b [φ1 U φ2]`` is violated, the classic evidence (Han &
Katoen) is a *smallest* set of finite paths, each satisfying the until
formula, whose probability mass together exceeds ``b``.  Best-first
search over path prefixes (ordered by probability) enumerates paths in
non-increasing probability order, so collecting them greedily yields a
minimal-cardinality evidence set.

Repair workflows use this to show *which* behaviours make a learned
model untrustworthy before deciding what to perturb.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Hashable, List, Optional, Sequence, Set, Tuple

from repro.checking.graph import backward_reachable
from repro.checking.parametric import label_satisfaction_set
from repro.logic.pctl import ProbabilisticOperator, Until
from repro.mdp.model import DTMC

State = Hashable


class Counterexample:
    """Evidence for a violated ``P <= b`` reachability bound.

    Attributes
    ----------
    paths:
        Evidence paths in non-increasing probability order, each ending
        in a target state.
    probabilities:
        The probability of each path.
    total_probability:
        Their sum — exceeds the violated bound when ``complete``.
    complete:
        Whether enough mass was collected to exceed the bound (the
        search budget can cut collection short on stiff models).
    """

    def __init__(
        self,
        paths: List[Tuple[State, ...]],
        probabilities: List[float],
        bound: float,
        complete: bool,
    ):
        self.paths = paths
        self.probabilities = probabilities
        self.bound = bound
        self.complete = complete

    @property
    def total_probability(self) -> float:
        """Accumulated probability mass of the evidence paths."""
        return float(sum(self.probabilities))

    def __len__(self) -> int:
        return len(self.paths)

    def __repr__(self) -> str:
        return (
            f"Counterexample(paths={len(self.paths)}, "
            f"mass={self.total_probability:.6g} > bound={self.bound:.6g}, "
            f"complete={self.complete})"
        )


def strongest_evidence_paths(
    chain: DTMC,
    targets: Set[State],
    allowed: Optional[Set[State]] = None,
    count: int = 1,
    max_expansions: int = 100_000,
) -> List[Tuple[Tuple[State, ...], float]]:
    """The ``count`` most probable until-satisfying paths from ``s0``.

    Best-first (uniform-cost in −log probability) search over prefixes;
    prefixes leaving ``allowed`` before the targets are pruned.
    """
    allowed = set(chain.states) if allowed is None else set(allowed)
    # Prune prefixes that can no longer reach the targets — without this,
    # non-target absorbing regions generate unbounded constant-probability
    # expansions.
    useful = backward_reachable(chain, targets, through=allowed)
    tie_breaker = itertools.count()
    heap: List[Tuple[float, int, Tuple[State, ...], float]] = []
    start = chain.initial_state
    heapq.heappush(heap, (-1.0, next(tie_breaker), (start,), 1.0))
    found: List[Tuple[Tuple[State, ...], float]] = []
    expansions = 0
    while heap and len(found) < count and expansions < max_expansions:
        _, _, path, probability = heapq.heappop(heap)
        state = path[-1]
        if state in targets:
            found.append((path, probability))
            continue
        if state not in allowed:
            continue
        expansions += 1
        for target, step in chain.transitions[state].items():
            extended = probability * step
            if extended <= 0.0 or target not in useful:
                continue
            heapq.heappush(
                heap,
                (-extended, next(tie_breaker), path + (target,), extended),
            )
    return found


def counterexample(
    chain: DTMC,
    formula: ProbabilisticOperator,
    max_paths: int = 10_000,
    max_expansions: int = 200_000,
) -> Counterexample:
    """Evidence that an upper-bound until formula is violated.

    Raises ``ValueError`` when the formula is not an upper-bound
    (``<``/``<=``) until/eventually property — lower-bound violations
    have no finite-path evidence.
    """
    if formula.comparison not in ("<", "<="):
        raise ValueError("counterexamples exist for upper-bound formulas only")
    path_formula = formula.path
    if not isinstance(path_formula, Until) or path_formula.step_bound is not None:
        raise ValueError("counterexamples support unbounded until formulas")
    allowed = set(
        label_satisfaction_set(chain.states, chain.labels, path_formula.left)
    )
    targets = set(
        label_satisfaction_set(chain.states, chain.labels, path_formula.right)
    )
    useful = backward_reachable(chain, targets, through=allowed)
    tie_breaker = itertools.count()
    heap: List[Tuple[float, int, Tuple[State, ...], float]] = []
    heapq.heappush(heap, (-1.0, next(tie_breaker), (chain.initial_state,), 1.0))
    paths: List[Tuple[State, ...]] = []
    probabilities: List[float] = []
    mass = 0.0
    expansions = 0
    while heap and mass <= formula.bound and len(paths) < max_paths:
        if expansions >= max_expansions:
            break
        _, _, path, probability = heapq.heappop(heap)
        state = path[-1]
        if state in targets:
            paths.append(path)
            probabilities.append(probability)
            mass += probability
            continue
        if state not in allowed:
            continue
        expansions += 1
        for target, step in chain.transitions[state].items():
            extended = probability * step
            if extended <= 0.0 or target not in useful:
                continue
            heapq.heappush(
                heap,
                (-extended, next(tie_breaker), path + (target,), extended),
            )
    return Counterexample(
        paths=paths,
        probabilities=probabilities,
        bound=formula.bound,
        complete=mass > formula.bound,
    )
