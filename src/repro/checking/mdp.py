"""PCTL model checking for MDPs.

Semantics follow PRISM: a formula ``P ⋈ b [ψ]`` holds in a state when
*every* (memoryless) scheduler satisfies the bound — so upper-bound
comparisons constrain the maximal probability over schedulers and
lower-bound comparisons the minimal one.  Likewise ``R ⋈ b [F φ]``
constrains the max/min expected reachability reward.

Quantitative values come from value iteration seeded by the qualitative
sets of :mod:`repro.checking.graph`.  The default ``"sparse"`` engine
runs Jacobi-style vectorised iteration over the stacked-choice CSR
matrix (per-state action reduction via ``np.maximum.reduceat``); it
iterates to a tighter tolerance than the dense Gauss–Seidel reference
so both engines agree to 1e-10.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Set

import numpy as np

from repro.checking.graph import (
    _check_engine,
    prob0A_states,
    prob0E_states,
    prob1A_states,
    prob1E_states,
)
from repro.checking.matrix import get_mdp_matrix
from repro.checking.result import ModelCheckingResult
from repro.logic.pctl import (
    And,
    CumulativeRewardOperator,
    AtomicProposition,
    Eventually,
    FalseFormula,
    Globally,
    Implies,
    Next,
    Not,
    Or,
    PathFormula,
    ProbabilisticOperator,
    RewardOperator,
    StateFormula,
    TrueFormula,
    Until,
    check_comparison,
)
from repro.mdp.model import MDP

State = Hashable

_VI_TOLERANCE = 1e-10
#: The sparse engine is Jacobi (simultaneous updates) where the dense
#: reference is Gauss–Seidel (in-place); converging two decades tighter
#: keeps the cross-engine difference within the 1e-10 equivalence budget.
_SPARSE_VI_TOLERANCE = 1e-12
_VI_MAX_ITERATIONS = 100_000


class MDPModelChecker:
    """Checks PCTL formulas on an :class:`~repro.mdp.MDP`.

    Examples
    --------
    >>> from repro.mdp import random_mdp
    >>> from repro.logic import parse_pctl
    >>> checker = MDPModelChecker(random_mdp(6, seed=0))
    >>> result = checker.check(parse_pctl("P>=0.0 [ F true ]"))
    >>> result.holds
    True
    """

    def __init__(self, mdp: MDP, engine: str = "sparse"):
        _check_engine(engine)
        self.mdp = mdp
        self.engine = engine

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def check(self, formula: StateFormula) -> ModelCheckingResult:
        """Check ``formula``; ``result.holds`` is satisfaction at ``s0``."""
        sat = self.satisfaction_set(formula)
        value = None
        values = None
        if isinstance(formula, ProbabilisticOperator):
            values = self.path_probabilities(
                formula.path, maximise=formula.comparison in ("<", "<=")
            )
            value = values[self.mdp.initial_state]
        elif isinstance(formula, RewardOperator):
            values = self.expected_rewards(
                formula, maximise=formula.comparison in ("<", "<=")
            )
            value = values[self.mdp.initial_state]
        elif isinstance(formula, CumulativeRewardOperator):
            values = self.cumulative_rewards(
                formula.steps, maximise=formula.comparison in ("<", "<=")
            )
            value = values[self.mdp.initial_state]
        return ModelCheckingResult(
            holds=self.mdp.initial_state in sat,
            satisfaction_set=sat,
            value=value,
            values=values,
        )

    def satisfaction_set(self, formula: StateFormula) -> FrozenSet[State]:
        """All states satisfying a state formula (for-all-schedulers)."""
        if isinstance(formula, TrueFormula):
            return frozenset(self.mdp.states)
        if isinstance(formula, FalseFormula):
            return frozenset()
        if isinstance(formula, AtomicProposition):
            return self.mdp.states_with_atom(formula.name)
        if isinstance(formula, Not):
            return frozenset(self.mdp.states) - self.satisfaction_set(formula.operand)
        if isinstance(formula, And):
            return self.satisfaction_set(formula.left) & self.satisfaction_set(
                formula.right
            )
        if isinstance(formula, Or):
            return self.satisfaction_set(formula.left) | self.satisfaction_set(
                formula.right
            )
        if isinstance(formula, Implies):
            return (
                frozenset(self.mdp.states) - self.satisfaction_set(formula.left)
            ) | self.satisfaction_set(formula.right)
        if isinstance(formula, ProbabilisticOperator):
            maximise = formula.comparison in ("<", "<=")
            probabilities = self.path_probabilities(formula.path, maximise=maximise)
            return frozenset(
                s
                for s in self.mdp.states
                if check_comparison(formula.comparison, probabilities[s], formula.bound)
            )
        if isinstance(formula, RewardOperator):
            maximise = formula.comparison in ("<", "<=")
            rewards = self.expected_rewards(formula, maximise=maximise)
            return frozenset(
                s
                for s in self.mdp.states
                if check_comparison(formula.comparison, rewards[s], formula.bound)
            )
        if isinstance(formula, CumulativeRewardOperator):
            maximise = formula.comparison in ("<", "<=")
            rewards = self.cumulative_rewards(formula.steps, maximise=maximise)
            return frozenset(
                s
                for s in self.mdp.states
                if check_comparison(formula.comparison, rewards[s], formula.bound)
            )
        raise TypeError(f"unsupported state formula {formula!r}")

    # ------------------------------------------------------------------
    # Quantitative operators
    # ------------------------------------------------------------------
    def path_probabilities(
        self, path: PathFormula, maximise: bool
    ) -> Dict[State, float]:
        """``Pmax``/``Pmin`` of a path formula, per state."""
        if isinstance(path, Next):
            return self._next_probabilities(path, maximise)
        if isinstance(path, Globally):
            dual = Eventually(Not(path.operand), path.step_bound)
            complement = self.path_probabilities(dual, maximise=not maximise)
            return {s: 1.0 - p for s, p in complement.items()}
        if isinstance(path, Until):
            if path.step_bound is None:
                return self._until_probabilities(path, maximise)
            return self._bounded_until_probabilities(path, maximise)
        raise TypeError(f"unsupported path formula {path!r}")

    def _reduce(self, matrix, choice_values: np.ndarray, maximise: bool):
        return (
            matrix.max_choice(choice_values)
            if maximise
            else matrix.min_choice(choice_values)
        )

    def _next_probabilities(self, path: Next, maximise: bool) -> Dict[State, float]:
        sat = self.satisfaction_set(path.operand)
        if self.engine == "sparse":
            matrix = get_mdp_matrix(self.mdp)
            choice_values = matrix.P @ matrix.mask(sat).astype(np.float64)
            return matrix.values_dict(
                self._reduce(matrix, choice_values, maximise)
            )
        pick = max if maximise else min
        return {
            s: pick(
                sum(
                    prob
                    for target, prob in self.mdp.transitions[s][action].items()
                    if target in sat
                )
                for action in self.mdp.actions(s)
            )
            for s in self.mdp.states
        }

    def _until_probabilities(self, path: Until, maximise: bool) -> Dict[State, float]:
        left = self.satisfaction_set(path.left)
        right = self.satisfaction_set(path.right)
        allowed = set(left) | set(right)
        if maximise:
            zero = prob0A_states(self.mdp, right, allowed, engine=self.engine)
            one = prob1E_states(self.mdp, right, allowed, engine=self.engine)
        else:
            zero = prob0E_states(self.mdp, right, allowed, engine=self.engine)
            one = prob1A_states(self.mdp, right, allowed, engine=self.engine)
        if self.engine == "sparse":
            matrix = get_mdp_matrix(self.mdp)
            one_mask = matrix.mask(one)
            unknown = ~(one_mask | matrix.mask(zero))
            values = one_mask.astype(np.float64)
            for _ in range(_VI_MAX_ITERATIONS):
                best = self._reduce(matrix, matrix.P @ values, maximise)
                updated = np.where(unknown, best, values)
                delta = float(np.max(np.abs(updated - values), initial=0.0))
                values = updated
                if delta < _SPARSE_VI_TOLERANCE:
                    break
            return matrix.values_dict(np.clip(values, 0.0, 1.0))
        values = {
            s: (1.0 if s in one else 0.0)
            for s in self.mdp.states
        }
        unknown = [s for s in self.mdp.states if s not in one and s not in zero]
        pick = max if maximise else min
        for _ in range(_VI_MAX_ITERATIONS):
            delta = 0.0
            for state in unknown:
                best = pick(
                    sum(
                        prob * values[target]
                        for target, prob in self.mdp.transitions[state][action].items()
                    )
                    for action in self.mdp.actions(state)
                )
                delta = max(delta, abs(best - values[state]))
                values[state] = best
            if delta < _VI_TOLERANCE:
                break
        return {s: float(np.clip(v, 0.0, 1.0)) for s, v in values.items()}

    def _bounded_until_probabilities(
        self, path: Until, maximise: bool
    ) -> Dict[State, float]:
        left = self.satisfaction_set(path.left)
        right = self.satisfaction_set(path.right)
        if self.engine == "sparse":
            matrix = get_mdp_matrix(self.mdp)
            right_mask = matrix.mask(right)
            propagate = matrix.mask(left) & ~right_mask
            values = right_mask.astype(np.float64)
            for _ in range(path.step_bound):
                best = self._reduce(matrix, matrix.P @ values, maximise)
                values = np.where(right_mask, 1.0, np.where(propagate, best, 0.0))
            return matrix.values_dict(values)
        pick = max if maximise else min
        values = {s: (1.0 if s in right else 0.0) for s in self.mdp.states}
        for _ in range(path.step_bound):
            updated: Dict[State, float] = {}
            for state in self.mdp.states:
                if state in right:
                    updated[state] = 1.0
                elif state in left:
                    updated[state] = pick(
                        sum(
                            prob * values[target]
                            for target, prob in self.mdp.transitions[state][
                                action
                            ].items()
                        )
                        for action in self.mdp.actions(state)
                    )
                else:
                    updated[state] = 0.0
            values = updated
        return values

    def expected_rewards(
        self, formula: RewardOperator, maximise: bool
    ) -> Dict[State, float]:
        """``Rmax``/``Rmin`` of cumulative reward to reach the target.

        A state's value is ``inf`` unless the target is reached with
        probability 1 — under every scheduler for ``Rmax``, under some
        scheduler for ``Rmin`` (standard PCTL reward semantics).
        """
        targets: Set[State] = set(self.satisfaction_set(formula.path.right))
        if maximise:
            finite = prob1A_states(self.mdp, targets, engine=self.engine)
        else:
            finite = prob1E_states(self.mdp, targets, engine=self.engine)
        if self.engine == "sparse":
            matrix = get_mdp_matrix(self.mdp)
            target_mask = matrix.mask(targets)
            finite_mask = matrix.mask(finite)
            values = np.where(target_mask | finite_mask, 0.0, np.inf)
            unknown = finite_mask & ~target_mask
            if unknown.any():
                for _ in range(_VI_MAX_ITERATIONS):
                    choice_values = matrix.choice_rewards + matrix.P @ values
                    best = self._reduce(matrix, choice_values, maximise)
                    updated = np.where(unknown, best, values)
                    delta = float(
                        np.max(np.abs(updated[unknown] - values[unknown]))
                    )
                    values = updated
                    if delta < _SPARSE_VI_TOLERANCE:
                        break
            return matrix.values_dict(values)
        values: Dict[State, float] = {}
        for state in self.mdp.states:
            values[state] = 0.0 if state in targets else (
                0.0 if state in finite else np.inf
            )
        unknown = [s for s in self.mdp.states if s in finite and s not in targets]
        pick = max if maximise else min
        for _ in range(_VI_MAX_ITERATIONS):
            delta = 0.0
            for state in unknown:
                candidates = []
                for action in self.mdp.actions(state):
                    total = self.mdp.reward(state, action)
                    diverged = False
                    for target, prob in self.mdp.transitions[state][action].items():
                        if values[target] == np.inf:
                            diverged = True
                            break
                        total += prob * values[target]
                    candidates.append(np.inf if diverged else total)
                # For Rmin, actions leading to inf states are avoided when
                # possible (the prob1E scheduler exists by construction).
                best = pick(candidates)
                if best == np.inf and not maximise:
                    finite_candidates = [c for c in candidates if c != np.inf]
                    best = min(finite_candidates) if finite_candidates else np.inf
                if values[state] != np.inf:
                    delta = max(delta, abs(best - values[state]))
                values[state] = best
            if delta < _VI_TOLERANCE:
                break
        return values

    def cumulative_rewards(
        self, steps: int, maximise: bool
    ) -> Dict[State, float]:
        """``R[C<=k]`` max/min over schedulers (finite-horizon DP)."""
        if self.engine == "sparse":
            matrix = get_mdp_matrix(self.mdp)
            values = np.zeros(matrix.num_states)
            for _ in range(steps):
                choice_values = matrix.choice_rewards + matrix.P @ values
                values = self._reduce(matrix, choice_values, maximise)
            return matrix.values_dict(values)
        pick = max if maximise else min
        values = {s: 0.0 for s in self.mdp.states}
        for _ in range(steps):
            values = {
                s: pick(
                    self.mdp.reward(s, action)
                    + sum(
                        prob * values[target]
                        for target, prob in self.mdp.transitions[s][
                            action
                        ].items()
                    )
                    for action in self.mdp.actions(s)
                )
                for s in self.mdp.states
            }
        return values

    # ------------------------------------------------------------------
    # Witness schedulers
    # ------------------------------------------------------------------
    def witness_scheduler(self, path: PathFormula, maximise: bool):
        """A memoryless scheduler achieving Pmax/Pmin of ``path``.

        Returns a :class:`~repro.mdp.DeterministicPolicy` greedy with
        respect to the converged probabilities — the standard witness
        for unbounded until; for bounded formulas the memoryless greedy
        policy is a witness only at the final step, so those raise.
        """
        from repro.mdp.policy import DeterministicPolicy

        if isinstance(path, Globally):
            if path.step_bound is not None:
                raise ValueError("witnesses need unbounded path formulas")
            # The witness for G φ is the opposite-direction witness for F ¬φ.
            dual = Eventually(Not(path.operand))
            return self.witness_scheduler(dual, maximise=not maximise)
        if not isinstance(path, Until) or path.step_bound is not None:
            raise ValueError("witnesses need unbounded until formulas")
        values = self.path_probabilities(path, maximise=maximise)
        pick = max if maximise else min
        mapping = {}
        for state in self.mdp.states:
            actions = self.mdp.actions(state)
            scored = [
                (
                    sum(
                        prob * values[target]
                        for target, prob in self.mdp.transitions[state][
                            action
                        ].items()
                    ),
                    index,
                    action,
                )
                for index, action in enumerate(actions)
            ]
            best_value = pick(score for score, _i, _a in scored)
            mapping[state] = next(
                action
                for score, _i, action in scored
                if abs(score - best_value) < 1e-12
            )
        return DeterministicPolicy(mapping)
