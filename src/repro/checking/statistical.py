"""Statistical model checking (SMC) by Monte-Carlo simulation.

A complement to the exact engines: estimate ``Pr(φ1 U φ2)`` or the
expected reachability reward by sampling trajectories, with
Chernoff–Hoeffding sample-size guarantees and a sequential
probability-ratio test (SPRT) for qualitative verdicts.  Useful when the
state space is too large to enumerate, and used by the test suite to
cross-validate the exact checkers on big random models.
"""

from __future__ import annotations

import math
from typing import Hashable, Optional, Set

import numpy as np

from repro.logic.pctl import (
    Eventually,
    ProbabilisticOperator,
    RewardOperator,
    StateFormula,
    Until,
    check_comparison,
)
from repro.checking.parametric import label_satisfaction_set
from repro.mdp.model import DTMC

State = Hashable


def chernoff_sample_size(epsilon: float, delta: float) -> int:
    """Samples needed so ``P(|p̂ − p| > ε) ≤ δ`` (additive Chernoff).

    ``n ≥ ln(2/δ) / (2 ε²)``.

    Examples
    --------
    >>> chernoff_sample_size(0.01, 0.05)
    18445
    """
    if not 0 < epsilon < 1 or not 0 < delta < 1:
        raise ValueError("epsilon and delta must lie in (0, 1)")
    return math.ceil(math.log(2.0 / delta) / (2.0 * epsilon * epsilon))


class SMCResult:
    """Outcome of a statistical check.

    Attributes
    ----------
    estimate:
        Point estimate of the checked quantity.
    samples:
        Trajectories drawn.
    epsilon / delta:
        The additive-error guarantee (estimation mode), or ``None`` for
        SPRT verdicts.
    holds:
        Verdict against the formula's bound, when one was requested.
    """

    def __init__(
        self,
        estimate: float,
        samples: int,
        epsilon: Optional[float],
        delta: Optional[float],
        holds: Optional[bool] = None,
    ):
        self.estimate = estimate
        self.samples = samples
        self.epsilon = epsilon
        self.delta = delta
        self.holds = holds

    def __repr__(self) -> str:
        verdict = f", holds={self.holds}" if self.holds is not None else ""
        return (
            f"SMCResult(estimate={self.estimate:.6g}, "
            f"samples={self.samples}{verdict})"
        )


class StatisticalModelChecker:
    """Monte-Carlo checking of reachability-style PCTL on a chain.

    Parameters
    ----------
    chain:
        The model to sample.
    seed:
        Seed for reproducible runs.
    max_steps:
        Truncation horizon per sampled path.  Unbounded-until estimates
        are exact in the limit only if paths decide within the horizon;
        the checker counts undecided paths as not-satisfying and reports
        them via :attr:`undecided_rate`.
    """

    def __init__(self, chain: DTMC, seed: Optional[int] = None,
                 max_steps: int = 10_000):
        self.chain = chain
        self.rng = np.random.default_rng(seed)
        self.max_steps = max_steps
        self.undecided_rate = 0.0

    # ------------------------------------------------------------------
    # Path sampling
    # ------------------------------------------------------------------
    def _sample_until(self, allowed: Set[State], targets: Set[State],
                      step_bound: Optional[int]):
        """One path; returns (satisfied, accumulated_reward, decided)."""
        state = self.chain.initial_state
        reward = 0.0
        horizon = self.max_steps if step_bound is None else step_bound
        for step in range(horizon + 1):
            if state in targets:
                return True, reward, True
            if state not in allowed:
                return False, reward, True
            reward += self.chain.state_rewards[state]
            successors = self.chain.successors(state)
            if successors == [state]:
                return False, reward, True  # absorbing non-target
            probs = np.array(
                [self.chain.probability(state, t) for t in successors]
            )
            state = successors[self.rng.choice(len(successors), p=probs)]
        return False, reward, step_bound is not None

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def estimate_probability(
        self,
        path: Until,
        epsilon: float = 0.01,
        delta: float = 0.05,
    ) -> SMCResult:
        """Estimate ``Pr(φ1 U φ2)`` to ±ε with confidence 1−δ."""
        allowed = label_satisfaction_set(
            self.chain.states, self.chain.labels, path.left
        )
        targets = label_satisfaction_set(
            self.chain.states, self.chain.labels, path.right
        )
        n = chernoff_sample_size(epsilon, delta)
        hits = 0
        undecided = 0
        for _ in range(n):
            satisfied, _, decided = self._sample_until(
                set(allowed), set(targets), path.step_bound
            )
            hits += satisfied
            undecided += not decided
        self.undecided_rate = undecided / n
        return SMCResult(hits / n, n, epsilon, delta)

    def estimate_reward(
        self,
        formula: RewardOperator,
        samples: int = 10_000,
    ) -> SMCResult:
        """Estimate the expected reachability reward by plain averaging."""
        targets = label_satisfaction_set(
            self.chain.states, self.chain.labels, formula.path.right
        )
        total = 0.0
        undecided = 0
        for _ in range(samples):
            satisfied, reward, decided = self._sample_until(
                set(self.chain.states), set(targets), None
            )
            total += reward
            undecided += not (satisfied and decided)
        self.undecided_rate = undecided / samples
        return SMCResult(total / samples, samples, None, None)

    # ------------------------------------------------------------------
    # Verdicts
    # ------------------------------------------------------------------
    def check(
        self,
        formula: StateFormula,
        epsilon: float = 0.01,
        delta: float = 0.05,
        reward_samples: int = 10_000,
    ) -> SMCResult:
        """Estimate, then compare against the formula's bound.

        For ``P ⋈ b`` formulas the verdict is reliable (within the
        Chernoff guarantee) whenever the true probability is at least ε
        away from ``b``.
        """
        if isinstance(formula, ProbabilisticOperator):
            if not isinstance(formula.path, Until):
                raise TypeError("SMC supports until/eventually path formulas")
            result = self.estimate_probability(formula.path, epsilon, delta)
            result.holds = check_comparison(
                formula.comparison, result.estimate, formula.bound
            )
            return result
        if isinstance(formula, RewardOperator):
            result = self.estimate_reward(formula, samples=reward_samples)
            result.holds = check_comparison(
                formula.comparison, result.estimate, formula.bound
            )
            return result
        raise TypeError("SMC expects a top-level P or R operator")

    def sprt(
        self,
        formula: ProbabilisticOperator,
        indifference: float = 0.01,
        alpha: float = 0.01,
        beta: float = 0.01,
        max_samples: int = 1_000_000,
    ) -> SMCResult:
        """Wald's sequential probability-ratio test for ``P ⋈ b [ψ]``.

        Tests ``H0: p ≥ b + δ`` against ``H1: p ≤ b − δ`` with error
        bounds α, β; usually needs far fewer samples than fixed-size
        estimation when the true probability is away from the bound.
        The verdict is mapped back through the comparison operator.
        """
        if not isinstance(formula.path, Until):
            raise TypeError("SMC supports until/eventually path formulas")
        p0 = min(1.0 - 1e-9, formula.bound + indifference)
        p1 = max(1e-9, formula.bound - indifference)
        accept_h1 = math.log((1 - beta) / alpha)
        accept_h0 = math.log(beta / (1 - alpha))
        allowed = label_satisfaction_set(
            self.chain.states, self.chain.labels, formula.path.left
        )
        targets = label_satisfaction_set(
            self.chain.states, self.chain.labels, formula.path.right
        )
        log_ratio = 0.0
        hits = 0
        for count in range(1, max_samples + 1):
            satisfied, _, _ = self._sample_until(
                set(allowed), set(targets), formula.path.step_bound
            )
            hits += satisfied
            if satisfied:
                log_ratio += math.log(p1 / p0)
            else:
                log_ratio += math.log((1 - p1) / (1 - p0))
            if log_ratio >= accept_h1:
                greater = False  # H1: p below the bound region
                break
            if log_ratio <= accept_h0:
                greater = True  # H0: p above the bound region
                break
        else:
            greater = hits / max_samples >= formula.bound
            count = max_samples
        if formula.comparison in (">", ">="):
            holds = greater
        else:
            holds = not greater
        return SMCResult(hits / count, count, None, None, holds=holds)
