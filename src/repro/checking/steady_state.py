"""Long-run (steady-state) analysis of Markov chains.

The long-run behaviour of a finite chain decomposes over its bottom
SCCs: from any start state, the chain is absorbed into some BSCC with a
computable probability and thereafter follows that BSCC's unique
stationary distribution.  This module provides

* per-BSCC stationary distributions,
* the per-state long-run distribution (the mixture above),
* long-run average state reward,

which back the PCTL steady-state operator ``S ⋈ b [φ]`` in
:class:`~repro.checking.DTMCModelChecker`.

The ``engine`` arguments mirror :mod:`repro.checking.graph`: the
``"sparse"`` default detects BSCCs via ``scipy.sparse.csgraph`` and
factorises the transient system once (``splu``) for all absorption
targets; ``"dense"`` is the original per-component ``np.linalg`` path.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Set

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import splu

from repro.checking.graph import _check_engine, bottom_strongly_connected_components
from repro.checking.matrix import get_dtmc_matrix
from repro.mdp.model import DTMC

State = Hashable


def stationary_distribution(
    chain: DTMC, component: FrozenSet[State], engine: str = "sparse"
) -> Dict[State, float]:
    """The stationary distribution of one bottom SCC.

    Solves ``π P = π, Σπ = 1`` restricted to the component (which is
    closed and irreducible by construction).  Components are typically
    tiny compared to the chain, so both engines solve the restricted
    system densely; the sparse engine merely slices it out of the cached
    CSR matrix instead of re-walking the transition dictionaries.
    """
    _check_engine(engine)
    members = sorted(component, key=str)
    index = {s: i for i, s in enumerate(members)}
    n = len(members)
    if n == 1:
        return {members[0]: 1.0}
    if engine == "sparse":
        csr = get_dtmc_matrix(chain)
        rows = np.asarray([csr.index[s] for s in members])
        matrix = csr.P[rows][:, rows].toarray()
    else:
        matrix = np.zeros((n, n))
        for state in members:
            for target, probability in chain.transitions[state].items():
                matrix[index[state], index[target]] = probability
    # (P^T − I) π = 0 with one row replaced by normalisation.
    system = np.vstack([(matrix.T - np.eye(n))[:-1], np.ones(n)])
    rhs = np.zeros(n)
    rhs[-1] = 1.0
    solution, _, _, _ = np.linalg.lstsq(system, rhs, rcond=None)
    solution = np.clip(solution, 0.0, None)
    solution /= solution.sum()
    return {s: float(solution[index[s]]) for s in members}


def absorption_probabilities(
    chain: DTMC, components: List[FrozenSet[State]], engine: str = "sparse"
) -> Dict[State, List[float]]:
    """``Pr_s(absorbed into components[k])`` for every state ``s``.

    Standard absorbing-chain solve: transient states form a linear
    system.  The sparse engine LU-factorises it once and back-solves per
    target component; the dense engine re-solves per component.
    """
    _check_engine(engine)
    union: Set[State] = set()
    for component in components:
        union |= component
    if engine == "sparse":
        csr = get_dtmc_matrix(chain)
        union_mask = csr.mask(union)
        transient_rows = np.flatnonzero(~union_mask)
        result: Dict[State, List[float]] = {
            s: [0.0] * len(components) for s in chain.states
        }
        factorised = None
        if transient_rows.size:
            restricted = csr.P[transient_rows]
            system = (
                sparse.identity(transient_rows.size, format="csc")
                - restricted[:, transient_rows].tocsc()
            )
            factorised = splu(system)
        for k, component in enumerate(components):
            for state in component:
                result[state][k] = 1.0
            if factorised is None:
                continue
            component_rows = np.flatnonzero(csr.mask(component))
            rhs = np.asarray(
                restricted[:, component_rows].sum(axis=1)
            ).ravel()
            solution = np.clip(factorised.solve(rhs), 0.0, 1.0)
            for i, row in enumerate(transient_rows):
                result[csr.states[row]][k] = float(solution[i])
        return result
    transient = [s for s in chain.states if s not in union]
    t_index = {s: i for i, s in enumerate(transient)}
    n = len(transient)
    matrix = np.eye(n)
    for state in transient:
        for target, probability in chain.transitions[state].items():
            if target in t_index:
                matrix[t_index[state], t_index[target]] -= probability
    result = {s: [0.0] * len(components) for s in chain.states}
    for k, component in enumerate(components):
        for state in component:
            result[state][k] = 1.0
        if not transient:
            continue
        rhs = np.zeros(n)
        for state in transient:
            for target, probability in chain.transitions[state].items():
                if target in component:
                    rhs[t_index[state]] += probability
        solution = np.linalg.solve(matrix, rhs)
        for state in transient:
            result[state][k] = float(np.clip(solution[t_index[state]], 0.0, 1.0))
    return result


def long_run_distribution(
    chain: DTMC, engine: str = "sparse"
) -> Dict[State, Dict[State, float]]:
    """Per-start-state long-run occupancy distribution.

    ``result[s][t]`` is the long-run fraction of time in ``t`` when the
    chain starts in ``s``.
    """
    components = bottom_strongly_connected_components(chain, engine=engine)
    stationaries = [
        stationary_distribution(chain, c, engine=engine) for c in components
    ]
    absorption = absorption_probabilities(chain, components, engine=engine)
    result: Dict[State, Dict[State, float]] = {}
    for state in chain.states:
        mixture: Dict[State, float] = {}
        for weight, stationary in zip(absorption[state], stationaries):
            if weight == 0.0:
                continue
            for target, probability in stationary.items():
                mixture[target] = mixture.get(target, 0.0) + weight * probability
        result[state] = mixture
    return result


def steady_state_probabilities(
    chain: DTMC, satisfying: Set[State], engine: str = "sparse"
) -> Dict[State, float]:
    """Long-run probability of being in ``satisfying``, per start state.

    This is the quantity the PCTL operator ``S ⋈ b [φ]`` compares.
    """
    occupancy = long_run_distribution(chain, engine=engine)
    return {
        state: sum(
            probability
            for target, probability in occupancy[state].items()
            if target in satisfying
        )
        for state in chain.states
    }


def long_run_average_reward(
    chain: DTMC, engine: str = "sparse"
) -> Dict[State, float]:
    """Long-run average state reward per time step, per start state."""
    occupancy = long_run_distribution(chain, engine=engine)
    return {
        state: sum(
            probability * chain.state_rewards[target]
            for target, probability in occupancy[state].items()
        )
        for state in chain.states
    }
