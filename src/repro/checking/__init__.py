"""PCTL model checking.

Three engines, mirroring what the paper gets from PRISM:

``DTMCModelChecker``
    Full PCTL on discrete-time Markov chains: qualitative graph
    precomputation (prob0/prob1) followed by exact linear-system solves,
    plus the expected-reachability-reward operator.
``MDPModelChecker``
    PCTL on MDPs with min/max quantification over memoryless schedulers
    (value iteration with graph-based seeding).
``ParametricDTMC`` / parametric checking
    The paper's key reduction (Propositions 2 and 3): state elimination
    on a chain whose transition probabilities are rational functions of
    repair parameters, yielding the constraint ``f(v) ⋈ b`` handed to
    the nonlinear optimiser.
"""

from repro.checking.cache import (
    CheckCache,
    GLOBAL_CACHE,
    cached_check,
    get_cache,
    parametric_fingerprint,
)
from repro.checking.graph import (
    backward_reachable,
    prob0_states,
    prob1_states,
    prob0A_states,
    prob0E_states,
    prob1A_states,
    prob1E_states,
)
from repro.checking.matrix import (
    DTMCMatrix,
    MDPMatrix,
    get_dtmc_matrix,
    get_mdp_matrix,
    model_fingerprint,
)
from repro.checking.dtmc import DTMCModelChecker
from repro.checking.mdp import MDPModelChecker
from repro.checking.parametric import (
    ELIMINATION_ORDERS,
    EliminationSnapshot,
    ParametricConstraint,
    ParametricDTMC,
    corridor_elimination,
    parametric_constraint,
    restricted_constraint,
    restricted_model,
)
from repro.checking.result import ModelCheckingResult
from repro.checking.counterexample import (
    Counterexample,
    EvidenceSearch,
    counterexample,
    strongest_evidence_paths,
)
from repro.checking.steady_state import (
    long_run_average_reward,
    long_run_distribution,
    stationary_distribution,
    steady_state_probabilities,
)
from repro.checking.graph import (
    bottom_strongly_connected_components,
    strongly_connected_components,
)
from repro.checking.statistical import (
    SMCResult,
    StatisticalModelChecker,
    chernoff_sample_size,
)

__all__ = [
    "DTMCModelChecker",
    "MDPModelChecker",
    "DTMCMatrix",
    "MDPMatrix",
    "get_dtmc_matrix",
    "get_mdp_matrix",
    "model_fingerprint",
    "CheckCache",
    "GLOBAL_CACHE",
    "cached_check",
    "get_cache",
    "parametric_fingerprint",
    "ParametricDTMC",
    "ParametricConstraint",
    "ELIMINATION_ORDERS",
    "EliminationSnapshot",
    "corridor_elimination",
    "parametric_constraint",
    "restricted_constraint",
    "restricted_model",
    "ModelCheckingResult",
    "StatisticalModelChecker",
    "SMCResult",
    "chernoff_sample_size",
    "Counterexample",
    "EvidenceSearch",
    "counterexample",
    "strongest_evidence_paths",
    "long_run_distribution",
    "long_run_average_reward",
    "stationary_distribution",
    "steady_state_probabilities",
    "strongly_connected_components",
    "bottom_strongly_connected_components",
    "backward_reachable",
    "prob0_states",
    "prob1_states",
    "prob0A_states",
    "prob0E_states",
    "prob1A_states",
    "prob1E_states",
]
