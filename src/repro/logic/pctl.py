"""PCTL abstract syntax.

Probabilistic Computation Tree Logic as used in the paper:

* state formulas: ``true``, ``false``, atomic propositions, boolean
  connectives, the probabilistic operator ``P ⋈ b [ψ]`` and the
  expected-reward operator ``R ⋈ b [F φ]``;
* path formulas: ``X φ`` (next), ``φ U ψ`` and the step-bounded
  ``φ U≤h ψ`` (until), plus the derived ``F φ = true U φ`` (eventually)
  and ``G φ`` (globally).

Formulas are immutable, hashable value objects; checkers dispatch on the
node classes.  The comparison ``⋈ ∈ {<, <=, >, >=}`` is stored as its
ASCII spelling.
"""

from __future__ import annotations

from typing import Optional

_COMPARISONS = {"<", "<=", ">", ">="}


def check_comparison(op: str, lhs: float, rhs: float) -> bool:
    """Apply a stored comparison operator."""
    if op == "<":
        return lhs < rhs
    if op == "<=":
        return lhs <= rhs
    if op == ">":
        return lhs > rhs
    if op == ">=":
        return lhs >= rhs
    raise ValueError(f"unknown comparison {op!r}")


class StateFormula:
    """Base class of PCTL state formulas."""

    def __and__(self, other: "StateFormula") -> "StateFormula":
        return And(self, other)

    def __or__(self, other: "StateFormula") -> "StateFormula":
        return Or(self, other)

    def __invert__(self) -> "StateFormula":
        return Not(self)


class PathFormula:
    """Base class of PCTL path formulas."""


class TrueFormula(StateFormula):
    """The formula ``true``."""

    def __eq__(self, other):
        return isinstance(other, TrueFormula)

    def __hash__(self):
        return hash("true")

    def __repr__(self):
        return "true"


class FalseFormula(StateFormula):
    """The formula ``false``."""

    def __eq__(self, other):
        return isinstance(other, FalseFormula)

    def __hash__(self):
        return hash("false")

    def __repr__(self):
        return "false"


class AtomicProposition(StateFormula):
    """An atomic proposition, matched against state labels."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name:
            raise ValueError("atomic proposition needs a name")
        self.name = name

    def __eq__(self, other):
        return isinstance(other, AtomicProposition) and self.name == other.name

    def __hash__(self):
        return hash(("ap", self.name))

    def __repr__(self):
        return f'"{self.name}"'


class Not(StateFormula):
    """Negation."""

    __slots__ = ("operand",)

    def __init__(self, operand: StateFormula):
        self.operand = operand

    def __eq__(self, other):
        return isinstance(other, Not) and self.operand == other.operand

    def __hash__(self):
        return hash(("not", self.operand))

    def __repr__(self):
        return f"!({self.operand!r})"


class _Binary(StateFormula):
    __slots__ = ("left", "right")
    _symbol = "?"

    def __init__(self, left: StateFormula, right: StateFormula):
        self.left = left
        self.right = right

    def __eq__(self, other):
        return (
            type(self) is type(other)
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self):
        return hash((type(self).__name__, self.left, self.right))

    def __repr__(self):
        return f"({self.left!r} {self._symbol} {self.right!r})"


class And(_Binary):
    """Conjunction."""

    _symbol = "&"


class Or(_Binary):
    """Disjunction."""

    _symbol = "|"


class Implies(_Binary):
    """Implication (sugar for ``!left | right``)."""

    _symbol = "=>"


class ProbabilisticOperator(StateFormula):
    """``P ⋈ b [ψ]`` — probability of paths satisfying ``ψ`` meets bound.

    For MDPs the quantification over schedulers follows PRISM's
    convention: upper-bound comparisons (``<``, ``<=``) constrain the
    *maximal* probability, lower-bound comparisons the *minimal* one, so
    the formula holds for every scheduler.
    """

    __slots__ = ("comparison", "bound", "path")

    def __init__(self, comparison: str, bound: float, path: PathFormula):
        if comparison not in _COMPARISONS:
            raise ValueError(f"bad comparison {comparison!r}")
        if not 0.0 <= bound <= 1.0:
            raise ValueError(f"probability bound {bound} outside [0, 1]")
        self.comparison = comparison
        self.bound = float(bound)
        self.path = path

    def __eq__(self, other):
        return (
            isinstance(other, ProbabilisticOperator)
            and self.comparison == other.comparison
            and self.bound == other.bound
            and self.path == other.path
        )

    def __hash__(self):
        return hash(("P", self.comparison, self.bound, self.path))

    def __repr__(self):
        return f"P{self.comparison}{self.bound} [{self.path!r}]"


class RewardOperator(StateFormula):
    """``R ⋈ b [F φ]`` — expected cumulative reward to reach ``φ``.

    This is the paper's WSN property shape
    ``R{attempts} <= X [F S_n11 = 2]``.  An optional ``label`` names the
    reward structure (informational; models carry one reward function).
    """

    __slots__ = ("comparison", "bound", "path", "label")

    def __init__(
        self,
        comparison: str,
        bound: float,
        path: PathFormula,
        label: Optional[str] = None,
    ):
        if comparison not in _COMPARISONS:
            raise ValueError(f"bad comparison {comparison!r}")
        if not isinstance(path, Eventually):
            raise ValueError("reward operator expects an 'F φ' path formula")
        self.comparison = comparison
        self.bound = float(bound)
        self.path = path
        self.label = label

    def __eq__(self, other):
        return (
            isinstance(other, RewardOperator)
            and self.comparison == other.comparison
            and self.bound == other.bound
            and self.path == other.path
            and self.label == other.label
        )

    def __hash__(self):
        return hash(("R", self.comparison, self.bound, self.path, self.label))

    def __repr__(self):
        tag = f"{{{self.label}}}" if self.label else ""
        return f"R{tag}{self.comparison}{self.bound} [{self.path!r}]"


class CumulativeRewardOperator(StateFormula):
    """``R ⋈ b [C<=k]`` — expected reward accumulated over ``k`` steps.

    PRISM's cumulative-reward operator: the expectation of the sum of
    state rewards collected at steps ``0 … k−1``, compared against the
    bound.
    """

    __slots__ = ("comparison", "bound", "steps")

    def __init__(self, comparison: str, bound: float, steps: int):
        if comparison not in _COMPARISONS:
            raise ValueError(f"bad comparison {comparison!r}")
        if steps < 0:
            raise ValueError("step bound must be non-negative")
        self.comparison = comparison
        self.bound = float(bound)
        self.steps = int(steps)

    def __eq__(self, other):
        return (
            isinstance(other, CumulativeRewardOperator)
            and self.comparison == other.comparison
            and self.bound == other.bound
            and self.steps == other.steps
        )

    def __hash__(self):
        return hash(("RC", self.comparison, self.bound, self.steps))

    def __repr__(self):
        return f"R{self.comparison}{self.bound} [C<={self.steps}]"


class SteadyStateOperator(StateFormula):
    """``S ⋈ b [φ]`` — long-run probability of being in ``Sat(φ)``.

    PRISM's steady-state operator: holds in a state when the long-run
    fraction of time spent in φ-states (mixing over the reachable bottom
    SCCs) meets the bound.
    """

    __slots__ = ("comparison", "bound", "operand")

    def __init__(self, comparison: str, bound: float, operand: StateFormula):
        if comparison not in _COMPARISONS:
            raise ValueError(f"bad comparison {comparison!r}")
        if not 0.0 <= bound <= 1.0:
            raise ValueError(f"probability bound {bound} outside [0, 1]")
        self.comparison = comparison
        self.bound = float(bound)
        self.operand = operand

    def __eq__(self, other):
        return (
            isinstance(other, SteadyStateOperator)
            and self.comparison == other.comparison
            and self.bound == other.bound
            and self.operand == other.operand
        )

    def __hash__(self):
        return hash(("S", self.comparison, self.bound, self.operand))

    def __repr__(self):
        return f"S{self.comparison}{self.bound} [{self.operand!r}]"


class Next(PathFormula):
    """``X φ`` — ``φ`` holds in the next state."""

    __slots__ = ("operand",)

    def __init__(self, operand: StateFormula):
        self.operand = operand

    def __eq__(self, other):
        return isinstance(other, Next) and self.operand == other.operand

    def __hash__(self):
        return hash(("X", self.operand))

    def __repr__(self):
        return f"X {self.operand!r}"


class Until(PathFormula):
    """``φ U ψ`` or the step-bounded ``φ U≤h ψ``."""

    __slots__ = ("left", "right", "step_bound")

    def __init__(
        self, left: StateFormula, right: StateFormula, step_bound: Optional[int] = None
    ):
        if step_bound is not None and step_bound < 0:
            raise ValueError("step bound must be non-negative")
        self.left = left
        self.right = right
        self.step_bound = step_bound

    def __eq__(self, other):
        return (
            isinstance(other, Until)
            and self.left == other.left
            and self.right == other.right
            and self.step_bound == other.step_bound
        )

    def __hash__(self):
        return hash(("U", self.left, self.right, self.step_bound))

    def __repr__(self):
        bound = f"<={self.step_bound}" if self.step_bound is not None else ""
        return f"{self.left!r} U{bound} {self.right!r}"


class Eventually(Until):
    """``F φ = true U φ`` (possibly step-bounded)."""

    def __init__(self, operand: StateFormula, step_bound: Optional[int] = None):
        super().__init__(TrueFormula(), operand, step_bound)

    @property
    def operand(self) -> StateFormula:
        """The formula that must eventually hold."""
        return self.right

    def __repr__(self):
        bound = f"<={self.step_bound}" if self.step_bound is not None else ""
        return f"F{bound} {self.right!r}"


class Globally(PathFormula):
    """``G φ`` — ``φ`` holds along the whole path (possibly bounded).

    Checkers rewrite ``P⋈b[G φ]`` into the dual eventually form; keeping
    the node preserves the user's syntax.
    """

    __slots__ = ("operand", "step_bound")

    def __init__(self, operand: StateFormula, step_bound: Optional[int] = None):
        if step_bound is not None and step_bound < 0:
            raise ValueError("step bound must be non-negative")
        self.operand = operand
        self.step_bound = step_bound

    def __eq__(self, other):
        return (
            isinstance(other, Globally)
            and self.operand == other.operand
            and self.step_bound == other.step_bound
        )

    def __hash__(self):
        return hash(("G", self.operand, self.step_bound))

    def __repr__(self):
        bound = f"<={self.step_bound}" if self.step_bound is not None else ""
        return f"G{bound} {self.operand!r}"


def negate_comparison(op: str) -> str:
    """The comparison satisfied by exactly the complementary values."""
    return {"<": ">=", "<=": ">", ">": "<=", ">=": "<"}[op]
