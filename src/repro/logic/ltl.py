"""Linear temporal logic over finite traces.

Reward Repair's rules can be LTL formulas "interpreted over a
trajectory" (Section IV-C).  We use the standard finite-trace (LTLf)
semantics: a formula is evaluated at a position of a finite trajectory;
``X φ`` is false at the last position (strong next), ``G φ`` means ``φ``
holds at every remaining position, ``F φ`` at some remaining position.

Atoms are predicates over a single step ``(state, action)`` so rules can
talk about actions ("never take action 0 in state S1") as well as state
labels.
"""

from __future__ import annotations

from typing import Callable, Hashable, Optional, Tuple

from repro.mdp.trajectory import Trajectory

StepPredicate = Callable[[Hashable, Optional[Hashable]], bool]


class LTLFormula:
    """Base class of finite-trace LTL formulas.

    Combine with ``& | ~`` and the constructors below, then evaluate
    with :func:`evaluate_ltl`.
    """

    def __and__(self, other: "LTLFormula") -> "LTLFormula":
        return LAnd(self, other)

    def __or__(self, other: "LTLFormula") -> "LTLFormula":
        return LOr(self, other)

    def __invert__(self) -> "LTLFormula":
        return LNot(self)

    def holds_at(self, trajectory: Trajectory, position: int) -> bool:
        """Whether the formula holds at ``position`` of ``trajectory``."""
        raise NotImplementedError


class LAtom(LTLFormula):
    """An atom: a predicate over one step ``(state, action)``."""

    def __init__(self, predicate: StepPredicate, name: str = "atom"):
        self.predicate = predicate
        self.name = name

    def holds_at(self, trajectory: Trajectory, position: int) -> bool:
        state, action = trajectory.steps[position]
        return bool(self.predicate(state, action))

    def __repr__(self):
        return self.name


class LTrue(LTLFormula):
    """The constant ``true``."""

    def holds_at(self, trajectory: Trajectory, position: int) -> bool:
        return True

    def __repr__(self):
        return "true"


class LNot(LTLFormula):
    """Negation."""

    def __init__(self, operand: LTLFormula):
        self.operand = operand

    def holds_at(self, trajectory: Trajectory, position: int) -> bool:
        return not self.operand.holds_at(trajectory, position)

    def __repr__(self):
        return f"!({self.operand!r})"


class LAnd(LTLFormula):
    """Conjunction."""

    def __init__(self, left: LTLFormula, right: LTLFormula):
        self.left, self.right = left, right

    def holds_at(self, trajectory: Trajectory, position: int) -> bool:
        return self.left.holds_at(trajectory, position) and self.right.holds_at(
            trajectory, position
        )

    def __repr__(self):
        return f"({self.left!r} & {self.right!r})"


class LOr(LTLFormula):
    """Disjunction."""

    def __init__(self, left: LTLFormula, right: LTLFormula):
        self.left, self.right = left, right

    def holds_at(self, trajectory: Trajectory, position: int) -> bool:
        return self.left.holds_at(trajectory, position) or self.right.holds_at(
            trajectory, position
        )

    def __repr__(self):
        return f"({self.left!r} | {self.right!r})"


class LNext(LTLFormula):
    """Strong next: false at the final position."""

    def __init__(self, operand: LTLFormula):
        self.operand = operand

    def holds_at(self, trajectory: Trajectory, position: int) -> bool:
        if position + 1 >= len(trajectory):
            return False
        return self.operand.holds_at(trajectory, position + 1)

    def __repr__(self):
        return f"X ({self.operand!r})"


class LEventually(LTLFormula):
    """``F φ`` — φ holds at some remaining position."""

    def __init__(self, operand: LTLFormula):
        self.operand = operand

    def holds_at(self, trajectory: Trajectory, position: int) -> bool:
        return any(
            self.operand.holds_at(trajectory, i)
            for i in range(position, len(trajectory))
        )

    def __repr__(self):
        return f"F ({self.operand!r})"


class LGlobally(LTLFormula):
    """``G φ`` — φ holds at every remaining position."""

    def __init__(self, operand: LTLFormula):
        self.operand = operand

    def holds_at(self, trajectory: Trajectory, position: int) -> bool:
        return all(
            self.operand.holds_at(trajectory, i)
            for i in range(position, len(trajectory))
        )

    def __repr__(self):
        return f"G ({self.operand!r})"


class LUntil(LTLFormula):
    """``φ U ψ`` — ψ holds at some remaining position, φ until then."""

    def __init__(self, left: LTLFormula, right: LTLFormula):
        self.left, self.right = left, right

    def holds_at(self, trajectory: Trajectory, position: int) -> bool:
        for i in range(position, len(trajectory)):
            if self.right.holds_at(trajectory, i):
                return True
            if not self.left.holds_at(trajectory, i):
                return False
        return False

    def __repr__(self):
        return f"({self.left!r} U {self.right!r})"


def ltl_atom(predicate: StepPredicate, name: str = "atom") -> LAtom:
    """Wrap a step predicate as an LTL atom.

    Examples
    --------
    >>> collide = ltl_atom(lambda s, a: s == "S2", name="collision")
    >>> safe = LGlobally(~collide)
    """
    return LAtom(predicate, name)


def state_atom(state: Hashable, name: Optional[str] = None) -> LAtom:
    """An atom true exactly when the trajectory is at ``state``."""
    return LAtom(lambda s, _a, _target=state: s == _target, name or f"at({state})")


def action_atom(action: Hashable, name: Optional[str] = None) -> LAtom:
    """An atom true exactly when the step takes ``action``."""
    return LAtom(
        lambda _s, a, _target=action: a == _target, name or f"take({action})"
    )


def label_atom(chain_or_mdp, atom: str) -> LAtom:
    """An atom true when the step's state carries label ``atom``."""
    labels = chain_or_mdp.labels
    return LAtom(lambda s, _a: atom in labels.get(s, frozenset()), atom)


def evaluate_ltl(formula: LTLFormula, trajectory: Trajectory) -> bool:
    """Evaluate a finite-trace LTL formula at the start of a trajectory."""
    return formula.holds_at(trajectory, 0)
