"""Specification logics.

The paper expresses trust properties in PCTL (checked on the model), and
rules for Reward Repair in propositional logic, first-order logic over
trajectories, or LTL interpreted on finite traces.  This package holds:

``pctl``
    The PCTL abstract syntax (state formulas ``P~b[...]``, ``R~b[...]``,
    boolean connectives) shared by the concrete and parametric checkers.
``parser``
    Text syntax, e.g. ``P>=0.99 [ F "changedlane" ]`` or
    ``R<=40 [ F "delivered" ]``.
``ltl``
    Finite-trace LTL evaluation over trajectories.
``propositional``
    Propositional formulas over step predicates.
``rules``
    Grounded rules ``φ_{l,g}(U) ∈ {0,1}`` for posterior-regularised
    Reward Repair (Proposition 4).
"""

from repro.logic.pctl import (
    And,
    CumulativeRewardOperator,
    AtomicProposition,
    Eventually,
    FalseFormula,
    Globally,
    Implies,
    Next,
    Not,
    Or,
    PathFormula,
    ProbabilisticOperator,
    RewardOperator,
    StateFormula,
    SteadyStateOperator,
    TrueFormula,
    Until,
)
from repro.logic.parser import PctlParseError, parse_pctl
from repro.logic.ltl import LTLFormula, evaluate_ltl, ltl_atom
from repro.logic.propositional import PropositionalFormula, prop_atom
from repro.logic.rules import (
    FirstOrderRule,
    LtlRule,
    PropositionalRule,
    Rule,
)

__all__ = [
    "StateFormula",
    "PathFormula",
    "TrueFormula",
    "FalseFormula",
    "AtomicProposition",
    "Not",
    "And",
    "Or",
    "Implies",
    "ProbabilisticOperator",
    "RewardOperator",
    "SteadyStateOperator",
    "CumulativeRewardOperator",
    "Next",
    "Until",
    "Eventually",
    "Globally",
    "parse_pctl",
    "PctlParseError",
    "LTLFormula",
    "evaluate_ltl",
    "ltl_atom",
    "PropositionalFormula",
    "prop_atom",
    "Rule",
    "PropositionalRule",
    "FirstOrderRule",
    "LtlRule",
]
