"""Text syntax for PCTL formulas.

Grammar (PRISM-flavoured)::

    state    := implies
    implies  := or ( '=>' or )*
    or       := and ( '|' and )*
    and      := unary ( '&' unary )*
    unary    := '!' unary | primary
    primary  := 'true' | 'false' | '"atom"' | identifier
              | '(' state ')' | prob | reward
    prob     := 'P' cmp number '[' path ']'
    reward   := 'R' ( '{' '"'? label '"'? '}' )? cmp number '[' path ']'
    path     := 'X' state
              | 'F' bound? state
              | 'G' bound? state
              | state 'U' bound? state
    bound    := '<=' integer
    cmp      := '<=' | '>=' | '<' | '>'

Examples
--------
>>> parse_pctl('P>=0.99 [ F "changedlane" ]')
P>=0.99 [F "changedlane"]
>>> parse_pctl('R{"attempts"}<=40 [ F "delivered" ]')
R{attempts}<=40.0 [F "delivered"]
"""

from __future__ import annotations

import re
from typing import List, NamedTuple, Optional

from repro.logic.pctl import (
    And,
    CumulativeRewardOperator,
    SteadyStateOperator,
    AtomicProposition,
    Eventually,
    FalseFormula,
    Globally,
    Implies,
    Next,
    Not,
    Or,
    ProbabilisticOperator,
    RewardOperator,
    StateFormula,
    TrueFormula,
    Until,
)


class PctlParseError(ValueError):
    """Raised on malformed PCTL text, with position information."""


class _Token(NamedTuple):
    kind: str
    text: str
    position: int


_TOKEN_PATTERN = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<NUMBER>(?:\d+\.\d+|\d+|\.\d+)(?:[eE][+-]?\d+)?)
  | (?P<CMP><=|>=|<|>)
  | (?P<IMPLIES>=>)
  | (?P<STRING>"[^"]*")
  | (?P<IDENT>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<PUNCT>[\[\](){}!&|])
    """,
    re.VERBOSE,
)

_KEYWORDS = {"true", "false", "P", "R", "S", "X", "F", "G", "U"}


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_PATTERN.match(text, position)
        if not match:
            raise PctlParseError(
                f"unexpected character {text[position]!r} at position {position}"
            )
        kind = match.lastgroup
        value = match.group()
        if kind != "WS":
            if kind == "IDENT" and value in _KEYWORDS:
                kind = value.upper()
            tokens.append(_Token(kind, value, position))
        position = match.end()
    tokens.append(_Token("EOF", "", len(text)))
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.cursor = 0

    # -- token helpers -------------------------------------------------
    def peek(self) -> _Token:
        return self.tokens[self.cursor]

    def advance(self) -> _Token:
        token = self.tokens[self.cursor]
        self.cursor += 1
        return token

    def expect(self, kind: str, text: Optional[str] = None) -> _Token:
        token = self.peek()
        if token.kind != kind or (text is not None and token.text != text):
            want = text or kind
            raise PctlParseError(
                f"expected {want!r} at position {token.position}, "
                f"found {token.text or 'end of input'!r}"
            )
        return self.advance()

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[_Token]:
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            return self.advance()
        return None

    # -- grammar --------------------------------------------------------
    def parse(self) -> StateFormula:
        formula = self.state_formula()
        self.expect("EOF")
        return formula

    def state_formula(self) -> StateFormula:
        left = self.or_formula()
        while self.accept("IMPLIES"):
            right = self.or_formula()
            left = Implies(left, right)
        return left

    def or_formula(self) -> StateFormula:
        left = self.and_formula()
        while self.accept("PUNCT", "|"):
            left = Or(left, self.and_formula())
        return left

    def and_formula(self) -> StateFormula:
        left = self.unary_formula()
        while self.accept("PUNCT", "&"):
            left = And(left, self.unary_formula())
        return left

    def unary_formula(self) -> StateFormula:
        if self.accept("PUNCT", "!"):
            return Not(self.unary_formula())
        return self.primary_formula()

    def primary_formula(self) -> StateFormula:
        token = self.peek()
        if token.kind == "TRUE":
            self.advance()
            return TrueFormula()
        if token.kind == "FALSE":
            self.advance()
            return FalseFormula()
        if token.kind == "STRING":
            self.advance()
            return AtomicProposition(token.text[1:-1])
        if token.kind == "IDENT":
            self.advance()
            return AtomicProposition(token.text)
        if token.kind == "PUNCT" and token.text == "(":
            self.advance()
            inner = self.state_formula()
            self.expect("PUNCT", ")")
            return inner
        if token.kind == "P":
            return self.probabilistic()
        if token.kind == "R":
            return self.reward()
        if token.kind == "S":
            return self.steady_state()
        raise PctlParseError(
            f"unexpected token {token.text or 'end of input'!r} "
            f"at position {token.position}"
        )

    def probabilistic(self) -> StateFormula:
        self.expect("P")
        comparison = self.expect("CMP").text
        bound = float(self.expect("NUMBER").text)
        self.expect("PUNCT", "[")
        path = self.path_formula()
        self.expect("PUNCT", "]")
        return ProbabilisticOperator(comparison, bound, path)

    def reward(self) -> StateFormula:
        self.expect("R")
        label = None
        if self.accept("PUNCT", "{"):
            token = self.peek()
            if token.kind == "STRING":
                label = self.advance().text[1:-1]
            else:
                label = self.expect("IDENT").text
            self.expect("PUNCT", "}")
        comparison = self.expect("CMP").text
        bound = float(self.expect("NUMBER").text)
        self.expect("PUNCT", "[")
        token = self.peek()
        if token.kind == "IDENT" and token.text == "C":
            self.advance()
            self.expect("CMP", "<=")
            steps = int(self.expect("NUMBER").text)
            self.expect("PUNCT", "]")
            return CumulativeRewardOperator(comparison, bound, steps)
        path = self.path_formula()
        self.expect("PUNCT", "]")
        if not isinstance(path, Eventually):
            raise PctlParseError(
                "reward operator requires an 'F φ' or 'C<=k' path formula"
            )
        return RewardOperator(comparison, bound, path, label=label)

    def steady_state(self) -> StateFormula:
        self.expect("S")
        comparison = self.expect("CMP").text
        bound = float(self.expect("NUMBER").text)
        self.expect("PUNCT", "[")
        operand = self.state_formula()
        self.expect("PUNCT", "]")
        return SteadyStateOperator(comparison, bound, operand)

    def path_formula(self):
        if self.accept("X"):
            return Next(self.state_formula())
        if self.accept("F"):
            bound = self._step_bound()
            return Eventually(self.state_formula(), bound)
        if self.accept("G"):
            bound = self._step_bound()
            return Globally(self.state_formula(), bound)
        left = self.state_formula()
        self.expect("U")
        bound = self._step_bound()
        right = self.state_formula()
        return Until(left, right, bound)

    def _step_bound(self) -> Optional[int]:
        if self.accept("CMP", "<="):
            return int(self.expect("NUMBER").text)
        return None


def parse_pctl(text: str) -> StateFormula:
    """Parse a PCTL state formula from text.

    Raises :class:`PctlParseError` with a position on malformed input.
    """
    return _Parser(text).parse()
