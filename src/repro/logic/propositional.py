"""Propositional formulas over named variables.

Used for propositional rules in Reward Repair: a rule's grounding binds
each propositional variable to a truth value computed from a trajectory
step (Section IV-C: "for propositional rules the groundings are provided
by the values of the states and actions in the traces").
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping


class PropositionalFormula:
    """Base class; combine with ``& | ~`` and ``implies``."""

    def __and__(self, other: "PropositionalFormula") -> "PropositionalFormula":
        return PAnd(self, other)

    def __or__(self, other: "PropositionalFormula") -> "PropositionalFormula":
        return POr(self, other)

    def __invert__(self) -> "PropositionalFormula":
        return PNot(self)

    def implies(self, other: "PropositionalFormula") -> "PropositionalFormula":
        """Material implication ``self => other``."""
        return POr(PNot(self), other)

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        """Truth value under a variable assignment."""
        raise NotImplementedError

    def variables(self) -> FrozenSet[str]:
        """All variable names in the formula."""
        raise NotImplementedError


class PVar(PropositionalFormula):
    """A propositional variable."""

    def __init__(self, name: str):
        self.name = name

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return bool(assignment[self.name])

    def variables(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def __repr__(self):
        return self.name


class PConst(PropositionalFormula):
    """A boolean constant."""

    def __init__(self, value: bool):
        self.value = bool(value)

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return self.value

    def variables(self) -> FrozenSet[str]:
        return frozenset()

    def __repr__(self):
        return "true" if self.value else "false"


class PNot(PropositionalFormula):
    """Negation."""

    def __init__(self, operand: PropositionalFormula):
        self.operand = operand

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return not self.operand.evaluate(assignment)

    def variables(self) -> FrozenSet[str]:
        return self.operand.variables()

    def __repr__(self):
        return f"!({self.operand!r})"


class PAnd(PropositionalFormula):
    """Conjunction."""

    def __init__(self, left: PropositionalFormula, right: PropositionalFormula):
        self.left, self.right = left, right

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return self.left.evaluate(assignment) and self.right.evaluate(assignment)

    def variables(self) -> FrozenSet[str]:
        return self.left.variables() | self.right.variables()

    def __repr__(self):
        return f"({self.left!r} & {self.right!r})"


class POr(PropositionalFormula):
    """Disjunction."""

    def __init__(self, left: PropositionalFormula, right: PropositionalFormula):
        self.left, self.right = left, right

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return self.left.evaluate(assignment) or self.right.evaluate(assignment)

    def variables(self) -> FrozenSet[str]:
        return self.left.variables() | self.right.variables()

    def __repr__(self):
        return f"({self.left!r} | {self.right!r})"


def prop_atom(name: str) -> PVar:
    """A propositional variable (convenience constructor)."""
    return PVar(name)


def all_assignments(variables: FrozenSet[str]):
    """Yield every truth assignment over ``variables`` (for tests)."""
    names = sorted(variables)
    for mask in range(2 ** len(names)):
        yield {name: bool(mask >> i & 1) for i, name in enumerate(names)}


def is_tautology(formula: PropositionalFormula) -> bool:
    """Exhaustively check whether a formula is valid."""
    return all(
        formula.evaluate(assignment)
        for assignment in all_assignments(formula.variables())
    )


def models(formula: PropositionalFormula) -> list:
    """All satisfying assignments (sorted variable order)."""
    return [
        dict(assignment)
        for assignment in all_assignments(formula.variables())
        if formula.evaluate(assignment)
    ]
