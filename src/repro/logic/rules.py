"""Grounded rules over trajectories for Reward Repair.

Proposition 4 repairs a trajectory distribution by the projection

    Q(U) = (1/Z) · P(U) · exp( − Σ_{l, g_l} λ_l · [1 − φ_{l,g_l}(U)] )

where ``g_l`` ranges over the *groundings* of rule ``φ_l`` on the
trajectory ``U``.  A :class:`Rule` therefore needs to expose how many of
its groundings a trajectory violates; the exponent's argument is then
``λ · violations``.

Three rule families mirror the paper:

``PropositionalRule``
    One grounding per trajectory step; propositional variables are bound
    by step predicates.
``FirstOrderRule``
    Variables quantified over trajectory positions (the paper grounds
    FOL rules on sampled trajectories); one grounding per variable
    binding.
``LtlRule``
    A single grounding: the whole trajectory, judged by finite-trace LTL.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Mapping, Optional, Sequence

from repro.logic.ltl import LTLFormula, evaluate_ltl
from repro.logic.propositional import PropositionalFormula
from repro.mdp.trajectory import Trajectory

StepPredicate = Callable[[Hashable, Optional[Hashable]], bool]


class Rule:
    """Base class of groundable rules.

    Parameters
    ----------
    weight:
        The importance weight ``λ_l``.  Large weights drive the
        probability of violating trajectories toward 0 (Proposition 4's
        "for large values of λ_l ... the probability of that path is 0").
    name:
        Label used in reports.
    """

    def __init__(self, weight: float = 10.0, name: str = "rule"):
        if weight < 0:
            raise ValueError("rule weight must be non-negative")
        self.weight = float(weight)
        self.name = name

    def grounding_count(self, trajectory: Trajectory) -> int:
        """Number of groundings the rule has on ``trajectory``."""
        raise NotImplementedError

    def violation_count(self, trajectory: Trajectory) -> int:
        """Number of groundings violated by ``trajectory``."""
        raise NotImplementedError

    def satisfied(self, trajectory: Trajectory) -> bool:
        """True when every grounding is satisfied."""
        return self.violation_count(trajectory) == 0

    def penalty(self, trajectory: Trajectory) -> float:
        """The exponent contribution ``λ · Σ_g [1 − φ_g(U)]``."""
        return self.weight * self.violation_count(trajectory)

    def __repr__(self):
        return f"{type(self).__name__}({self.name!r}, weight={self.weight})"


class PropositionalRule(Rule):
    """A propositional formula grounded at every trajectory step.

    Parameters
    ----------
    formula:
        A :class:`~repro.logic.propositional.PropositionalFormula`.
    bindings:
        ``{variable_name: step_predicate}`` giving each propositional
        variable a truth value at a step ``(state, action)``.

    Examples
    --------
    A rule "in state S1, never take action 0"::

        at_s1 = prop_atom("at_s1")
        takes0 = prop_atom("takes0")
        rule = PropositionalRule(
            at_s1.implies(~takes0),
            bindings={
                "at_s1": lambda s, a: s == "S1",
                "takes0": lambda s, a: a == 0,
            },
        )
    """

    def __init__(
        self,
        formula: PropositionalFormula,
        bindings: Mapping[str, StepPredicate],
        weight: float = 10.0,
        name: str = "propositional-rule",
    ):
        super().__init__(weight=weight, name=name)
        missing = formula.variables() - set(bindings)
        if missing:
            raise ValueError(f"unbound propositional variables: {sorted(missing)}")
        self.formula = formula
        self.bindings = dict(bindings)

    def grounding_count(self, trajectory: Trajectory) -> int:
        return len(trajectory)

    def violation_count(self, trajectory: Trajectory) -> int:
        violations = 0
        for state, action in trajectory.steps:
            assignment = {
                var: bool(predicate(state, action))
                for var, predicate in self.bindings.items()
            }
            if not self.formula.evaluate(assignment):
                violations += 1
        return violations


class FirstOrderRule(Rule):
    """A rule with variables quantified over trajectory positions.

    The body is a callable ``body(trajectory, binding) -> bool`` where
    ``binding`` maps each variable name to a position index.  Each
    binding in the product universe is a grounding; the paper
    approximates the universe by sampled trajectories — here the
    universe per trajectory is all position tuples.

    Examples
    --------
    "whenever the car is at S1 it changes lane next step"::

        rule = FirstOrderRule(
            variables=["t"],
            body=lambda u, b: u.state_at(b["t"]) != "S1"
                              or u.action_at(b["t"]) == 1,
        )
    """

    def __init__(
        self,
        variables: Sequence[str],
        body: Callable[[Trajectory, Dict[str, int]], bool],
        weight: float = 10.0,
        name: str = "first-order-rule",
    ):
        super().__init__(weight=weight, name=name)
        if not variables:
            raise ValueError("first-order rule needs at least one variable")
        self.variables = list(variables)
        self.body = body

    def _bindings(self, trajectory: Trajectory) -> List[Dict[str, int]]:
        positions = range(len(trajectory))
        bindings: List[Dict[str, int]] = [{}]
        for variable in self.variables:
            bindings = [
                {**binding, variable: position}
                for binding in bindings
                for position in positions
            ]
        return bindings

    def grounding_count(self, trajectory: Trajectory) -> int:
        return len(trajectory) ** len(self.variables)

    def violation_count(self, trajectory: Trajectory) -> int:
        return sum(
            1
            for binding in self._bindings(trajectory)
            if not self.body(trajectory, binding)
        )


class LtlRule(Rule):
    """A finite-trace LTL formula; the whole trajectory is one grounding.

    Section IV-C: "For LTL, we pass the constraints through a parametric
    model checker ... which can then be used to estimate Q"; on finite
    trajectories the equivalent operational semantics is direct LTLf
    evaluation, which is what this class does.
    """

    def __init__(
        self, formula: LTLFormula, weight: float = 10.0, name: str = "ltl-rule"
    ):
        super().__init__(weight=weight, name=name)
        self.formula = formula

    def grounding_count(self, trajectory: Trajectory) -> int:
        return 1

    def violation_count(self, trajectory: Trajectory) -> int:
        return 0 if evaluate_ltl(self.formula, trajectory) else 1


def total_penalty(rules: Sequence[Rule], trajectory: Trajectory) -> float:
    """The full exponent ``Σ_{l,g_l} λ_l [1 − φ_{l,g_l}(U)]``."""
    return sum(rule.penalty(trajectory) for rule in rules)


def all_satisfied(rules: Sequence[Rule], trajectory: Trajectory) -> bool:
    """True when the trajectory satisfies every grounding of every rule."""
    return all(rule.satisfied(trajectory) for rule in rules)
