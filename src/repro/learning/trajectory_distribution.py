"""Distributions over bounded-horizon trajectories (Equation 16).

The Reward Repair machinery reasons about the trajectory distribution

    P(U | θ, P) = (1/Z(θ)) · exp( Σ_i θᵀ f(s_i) ) · Π_i P(s_{i+1}|s_i,a_i)

For the paper's laptop-scale MDPs the support of bounded-horizon
trajectories is small enough to enumerate exactly, which keeps every
projection step exact.  For larger models a Metropolis-Hastings sampler
over trajectories approximates expectations (the paper's "samples of
trajectories drawn from the MDP using Gibbs sampling").
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Hashable, List, Mapping, Optional, Sequence, Set

import numpy as np

from repro.mdp.model import MDP
from repro.mdp.trajectory import Trajectory

State = Hashable
Action = Hashable


def enumerate_trajectories(
    mdp: MDP,
    horizon: int,
    start_state: Optional[State] = None,
    stop_states: Optional[Set[State]] = None,
    max_count: int = 2_000_000,
) -> List[Trajectory]:
    """All action-labelled trajectories of length ``horizon`` steps.

    A trajectory stops early on entering a ``stop_states`` member; all
    returned trajectories end in a ``(state, None)`` pair.  Raises
    ``ValueError`` if enumeration would exceed ``max_count``.
    """
    start = mdp.initial_state if start_state is None else start_state
    stop_states = stop_states or set()
    complete: List[Trajectory] = []
    frontier: List[List] = [[(start, None)]]
    for _ in range(horizon):
        next_frontier: List[List] = []
        for partial in frontier:
            state, _ = partial[-1]
            if state in stop_states:
                complete.append(Trajectory(partial))
                continue
            for action in mdp.actions(state):
                for target in mdp.successors(state, action):
                    extended = partial[:-1] + [(state, action), (target, None)]
                    next_frontier.append(extended)
            if len(next_frontier) + len(complete) > max_count:
                raise ValueError(
                    f"trajectory enumeration exceeds {max_count} paths; "
                    "use MetropolisTrajectorySampler instead"
                )
        frontier = next_frontier
        if not frontier:
            break
    complete.extend(Trajectory(partial) for partial in frontier)
    return complete


def trajectory_log_weight(
    mdp: MDP,
    trajectory: Trajectory,
    state_rewards: Mapping[State, float],
) -> float:
    """``log [ exp(Σ reward(s_i)) · Π P(s'|s,a) ]`` — Equation 16's numerator."""
    log_weight = 0.0
    for state, _action in trajectory.steps:
        log_weight += state_rewards[state]
    for state, action, target in trajectory.transitions():
        if action is None:
            raise ValueError("trajectory must carry actions for Equation 16")
        prob = mdp.probability(state, action, target)
        if prob == 0.0:
            return -math.inf
        log_weight += math.log(prob)
    return log_weight


def trajectory_probability_unnormalised(
    mdp: MDP,
    trajectory: Trajectory,
    state_rewards: Mapping[State, float],
) -> float:
    """The unnormalised Equation 16 weight."""
    return math.exp(trajectory_log_weight(mdp, trajectory, state_rewards))


class TrajectoryDistribution:
    """An explicit probability distribution over enumerated trajectories.

    Examples
    --------
    >>> from repro.mdp import random_mdp
    >>> from repro.mdp.policy import uniform_policy
    >>> mdp = random_mdp(3, seed=1)
    >>> dist = TrajectoryDistribution.from_maxent(
    ...     mdp, mdp.state_rewards, horizon=2)
    >>> abs(sum(dist.probabilities.values()) - 1.0) < 1e-9
    True
    """

    def __init__(self, probabilities: Mapping[Trajectory, float]):
        total = float(sum(probabilities.values()))
        if total <= 0:
            raise ValueError("distribution has zero total mass")
        self.probabilities: Dict[Trajectory, float] = {
            trajectory: probability / total
            for trajectory, probability in probabilities.items()
            if probability > 0.0
        }

    @staticmethod
    def from_maxent(
        mdp: MDP,
        state_rewards: Mapping[State, float],
        horizon: int,
        stop_states: Optional[Set[State]] = None,
    ) -> "TrajectoryDistribution":
        """The Equation 16 distribution over all horizon-bounded paths.

        Computed in log space and normalised with a max-shift, so large
        reward magnitudes cannot overflow.
        """
        trajectories = enumerate_trajectories(mdp, horizon, stop_states=stop_states)
        log_weights = {
            trajectory: trajectory_log_weight(mdp, trajectory, state_rewards)
            for trajectory in trajectories
        }
        finite = [w for w in log_weights.values() if w > -math.inf]
        if not finite:
            raise ValueError("no trajectory has positive probability")
        shift = max(finite)
        weights = {
            trajectory: math.exp(log_weight - shift)
            for trajectory, log_weight in log_weights.items()
            if log_weight > -math.inf
        }
        return TrajectoryDistribution(weights)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def probability(self, trajectory: Trajectory) -> float:
        """Probability of one trajectory (0 if not in support)."""
        return self.probabilities.get(trajectory, 0.0)

    def support(self) -> List[Trajectory]:
        """Trajectories with positive probability."""
        return list(self.probabilities)

    def expectation(self, function: Callable[[Trajectory], float]) -> float:
        """``E[function(U)]`` under the distribution."""
        return sum(
            probability * function(trajectory)
            for trajectory, probability in self.probabilities.items()
        )

    def event_probability(self, predicate: Callable[[Trajectory], bool]) -> float:
        """Probability that the predicate holds."""
        return self.expectation(lambda u: 1.0 if predicate(u) else 0.0)

    def expected_state_visits(self) -> Dict[State, float]:
        """Expected number of visits to each state."""
        visits: Dict[State, float] = {}
        for trajectory, probability in self.probabilities.items():
            for state in trajectory.states():
                visits[state] = visits.get(state, 0.0) + probability
        return visits

    def kl_divergence(self, other: "TrajectoryDistribution") -> float:
        """``KL(self ‖ other)``; ``inf`` if supports mismatch."""
        total = 0.0
        for trajectory, probability in self.probabilities.items():
            other_probability = other.probability(trajectory)
            if other_probability == 0.0:
                return math.inf
            total += probability * math.log(probability / other_probability)
        return total

    def reweighted(
        self, log_factor: Callable[[Trajectory], float]
    ) -> "TrajectoryDistribution":
        """A new distribution ``∝ p(U)·exp(log_factor(U))``."""
        weights = {
            trajectory: probability * math.exp(log_factor(trajectory))
            for trajectory, probability in self.probabilities.items()
        }
        return TrajectoryDistribution(weights)

    def __len__(self) -> int:
        return len(self.probabilities)

    def __repr__(self) -> str:
        return f"TrajectoryDistribution(|support|={len(self.probabilities)})"


class MetropolisTrajectorySampler:
    """Metropolis-Hastings over trajectories for large models.

    Proposal: resample the trajectory suffix from a random cut point by
    following uniform random actions and the MDP dynamics.  The target
    is the Equation 16 distribution (optionally times an extra
    log-factor, which is how posterior-regularised expectations are
    estimated without enumeration).
    """

    def __init__(
        self,
        mdp: MDP,
        state_rewards: Mapping[State, float],
        horizon: int,
        extra_log_factor: Optional[Callable[[Trajectory], float]] = None,
        seed: Optional[int] = None,
    ):
        self.mdp = mdp
        self.state_rewards = dict(state_rewards)
        self.horizon = horizon
        self.extra_log_factor = extra_log_factor
        self.rng = np.random.default_rng(seed)

    def _random_suffix(self, start: State, steps: int) -> List:
        path = []
        state = start
        for _ in range(steps):
            actions = self.mdp.actions(state)
            action = actions[self.rng.integers(len(actions))]
            path.append((state, action))
            successors = self.mdp.successors(state, action)
            probs = np.array(
                [self.mdp.probability(state, action, t) for t in successors]
            )
            state = successors[self.rng.choice(len(successors), p=probs)]
        path.append((state, None))
        return path

    def _log_target(self, trajectory: Trajectory) -> float:
        log_weight = trajectory_log_weight(self.mdp, trajectory, self.state_rewards)
        if self.extra_log_factor is not None and log_weight > -math.inf:
            log_weight += self.extra_log_factor(trajectory)
        return log_weight

    def _log_proposal(self, trajectory: Trajectory, cut: int) -> float:
        """Log-probability of generating the suffix from position ``cut``."""
        log_prob = 0.0
        for i in range(cut, len(trajectory) - 1):
            state, action = trajectory.steps[i]
            target = trajectory.steps[i + 1][0]
            log_prob -= math.log(len(self.mdp.actions(state)))
            log_prob += math.log(self.mdp.probability(state, action, target))
        return log_prob

    def sample(self, count: int, burn_in: int = 200, thin: int = 2) -> List[Trajectory]:
        """Draw ``count`` (correlated) samples after burn-in.

        The acceptance ratio includes the (asymmetric) proposal density —
        the suffix is regenerated by following uniform actions and the
        true dynamics, so the dynamics factor cancels against the target
        and what remains is the reward and action-fan-out correction.
        """
        current = Trajectory(self._random_suffix(self.mdp.initial_state, self.horizon))
        current_log = self._log_target(current)
        samples: List[Trajectory] = []
        iterations = burn_in + count * thin
        for iteration in range(iterations):
            cut = int(self.rng.integers(len(current)))
            prefix = list(current.steps[:cut])
            start = current.steps[cut][0]
            proposal_steps = prefix + self._random_suffix(start, self.horizon - cut)
            proposal = Trajectory(proposal_steps)
            proposal_log = self._log_target(proposal)
            if proposal_log > -math.inf:
                log_ratio = (
                    proposal_log
                    - current_log
                    + self._log_proposal(current, cut)
                    - self._log_proposal(proposal, cut)
                )
                if log_ratio >= 0 or self.rng.random() < math.exp(log_ratio):
                    current, current_log = proposal, proposal_log
            if iteration >= burn_in and (iteration - burn_in) % thin == 0:
                samples.append(current)
        return samples[:count]
