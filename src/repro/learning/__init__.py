"""Learning procedures (the paper's ``ML``).

``mle``
    Maximum-likelihood estimation of chain transition probabilities from
    trace data — the paper's learning procedure for ``P`` — and its
    *parametric* variant where per-group drop probabilities make the
    estimates rational functions (the heart of Data Repair).
``irl``
    Maximum-entropy inverse reinforcement learning (Ziebart et al.) —
    the paper's learning procedure for ``R``.
``trajectory_distribution``
    Exact enumeration of bounded-horizon trajectory distributions
    (Equation 16) and a Metropolis sampler for larger models.
``posterior_regularization``
    The Proposition 4 projection ``Q(U) ∝ P(U)·exp(−Σ λ[1−φ(U)])`` and
    reward re-estimation by moment matching.
"""

from repro.learning.mle import (
    count_transitions,
    learn_dtmc,
    parametric_augment_mle_dtmc,
    parametric_mle_dtmc,
)
from repro.learning.irl import (
    FeatureMap,
    MaxEntIRL,
    MaxEntIRLResult,
    TabularFeatureMap,
)
from repro.learning.trajectory_distribution import (
    TrajectoryDistribution,
    enumerate_trajectories,
    trajectory_log_weight,
    trajectory_probability_unnormalised,
    MetropolisTrajectorySampler,
)
from repro.learning.posterior_regularization import (
    fit_reward_to_distribution,
    fit_reward_to_sampled_projection,
    project_distribution,
    sampled_projection_feature_expectation,
)

__all__ = [
    "count_transitions",
    "learn_dtmc",
    "parametric_mle_dtmc",
    "parametric_augment_mle_dtmc",
    "FeatureMap",
    "TabularFeatureMap",
    "MaxEntIRL",
    "MaxEntIRLResult",
    "TrajectoryDistribution",
    "enumerate_trajectories",
    "trajectory_log_weight",
    "trajectory_probability_unnormalised",
    "MetropolisTrajectorySampler",
    "project_distribution",
    "fit_reward_to_distribution",
    "fit_reward_to_sampled_projection",
    "sampled_projection_feature_expectation",
]
