"""Maximum-likelihood learning of Markov chains from traces.

The paper's learning procedure ``ML(D)`` for transition probabilities is
plain maximum likelihood: the estimate of ``P(j | i)`` is the fraction of
observed ``i → j`` transitions among all transitions leaving ``i``.

Two variants live here:

``learn_dtmc``
    The concrete estimator.
``parametric_mle_dtmc``
    The Data Repair estimator.  Traces are partitioned into *groups*;
    group ``g`` is kept with probability ``1 − p_g``, where ``p_g`` is a
    repair parameter.  The MLE transition probabilities then become
    rational functions of the ``p_g`` — e.g. with 40 % successful and
    60 % failed forwarding traces the forward probability becomes
    ``0.4·(1−p_s) / (0.4·(1−p_s) + 0.6·(1−p_f))`` — exactly the paper's
    ``0.4 / (0.4 + 0.6·p)`` shape after dividing through (Section V-A.2).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Mapping, Optional, Sequence, Tuple

from repro.mdp.model import DTMC
from repro.mdp.trajectory import Trajectory
from repro.checking.parametric import ParametricDTMC
from repro.symbolic import Polynomial, RationalFunction

State = Hashable


def count_transitions(
    traces: Iterable[Trajectory],
) -> Dict[State, Dict[State, int]]:
    """Transition counts ``{source: {target: count}}`` over all traces."""
    counts: Dict[State, Dict[State, int]] = {}
    for trace in traces:
        states = trace.states()
        for i in range(len(states) - 1):
            row = counts.setdefault(states[i], {})
            row[states[i + 1]] = row.get(states[i + 1], 0) + 1
    return counts


def learn_dtmc(
    traces: Sequence[Trajectory],
    initial_state: State,
    states: Optional[Sequence[State]] = None,
    labels: Optional[Mapping[State, Iterable[str]]] = None,
    state_rewards: Optional[Mapping[State, float]] = None,
    smoothing: float = 0.0,
) -> DTMC:
    """Maximum-likelihood chain from traces.

    Parameters
    ----------
    traces:
        Observed trajectories.  States never seen as sources become
        absorbing.
    initial_state:
        Initial state of the learned chain.
    states:
        Optional explicit state space (defaults to every state seen).
    smoothing:
        Additive (Laplace) smoothing over *observed* successor sets;
        0 gives the pure MLE of the paper.
    """
    counts = count_transitions(traces)
    if states is None:
        seen = set()
        for trace in traces:
            seen.update(trace.states())
        seen.add(initial_state)
        states = sorted(seen, key=str)
    transitions: Dict[State, Dict[State, float]] = {}
    for state in states:
        row = counts.get(state, {})
        total = sum(row.values()) + smoothing * len(row)
        if total == 0:
            transitions[state] = {state: 1.0}
            continue
        transitions[state] = {
            target: (count + smoothing) / total for target, count in row.items()
        }
    return DTMC(
        states=states,
        transitions=transitions,
        initial_state=initial_state,
        labels=labels,
        state_rewards=state_rewards,
    )


def parametric_mle_dtmc(
    grouped_counts: Mapping[str, Mapping[State, Mapping[State, int]]],
    initial_state: State,
    states: Sequence[State],
    drop_parameters: Mapping[str, str],
    labels: Optional[Mapping[State, Iterable[str]]] = None,
    state_rewards: Optional[Mapping[State, float]] = None,
    fixed_rows: Optional[Mapping[State, Mapping[State, float]]] = None,
) -> ParametricDTMC:
    """The Data Repair parametric chain.

    Parameters
    ----------
    grouped_counts:
        ``{group_name: {source: {target: count}}}`` — transition counts
        contributed by each trace group.
    drop_parameters:
        ``{group_name: parameter_name}``.  Group ``g`` is kept with
        weight ``1 − parameter``; groups missing from this mapping are
        always fully kept.
    fixed_rows:
        Optional rows pinned to concrete probabilities (states whose
        data is known reliable — the paper's "certain p_i values are 1").

    Returns
    -------
    ParametricDTMC
        Transition probability ``i → j`` equal to
        ``Σ_g (1 − p_g)·c_g(i,j)  /  Σ_g (1 − p_g)·c_g(i,·)``.
    """
    one = Polynomial.one()
    keep_weight: Dict[str, Polynomial] = {}
    for group in grouped_counts:
        parameter = drop_parameters.get(group)
        keep_weight[group] = (
            one - Polynomial.variable(parameter) if parameter else one
        )
    transitions: Dict[State, Dict[State, RationalFunction]] = {}
    fixed_rows = fixed_rows or {}
    for state in states:
        if state in fixed_rows:
            transitions[state] = {
                target: RationalFunction.constant(prob)
                for target, prob in fixed_rows[state].items()
            }
            continue
        numerators: Dict[State, Polynomial] = {}
        denominator = Polynomial.zero()
        for group, counts in grouped_counts.items():
            row = counts.get(state, {})
            for target, count in row.items():
                weighted = keep_weight[group].scaled(count)
                numerators[target] = numerators.get(target, Polynomial.zero()) + (
                    weighted
                )
                denominator = denominator + weighted
        if denominator.is_zero():
            transitions[state] = {state: RationalFunction.one()}
            continue
        transitions[state] = {
            target: RationalFunction(numerator, denominator)
            for target, numerator in numerators.items()
        }
    return ParametricDTMC(
        states=states,
        transitions=transitions,
        initial_state=initial_state,
        labels=labels,
        state_rewards=state_rewards,
    )


def parametric_augment_mle_dtmc(
    grouped_counts: Mapping[str, Mapping[State, Mapping[State, int]]],
    initial_state: State,
    states: Sequence[State],
    weight_parameters: Mapping[str, str],
    labels: Optional[Mapping[State, Iterable[str]]] = None,
    state_rewards: Optional[Mapping[State, float]] = None,
) -> ParametricDTMC:
    """The *augmentation* variant of Data Repair's inner problem.

    The paper notes "we can come up with similar formulations when we
    consider data points being added or replaced".  Here group ``g`` is
    duplicated with weight ``1 + w_g`` (``w_g >= 0``), so the MLE
    transition probabilities become

        p(i -> j) = Sum_g (1 + w_g) c_g(i, j)  /  Sum_g (1 + w_g) c_g(i, .)

    — again rational functions, so the same parametric-checking + NLP
    pipeline applies.  Groups absent from ``weight_parameters`` keep
    weight 1.
    """
    one = Polynomial.one()
    group_weight: Dict[str, Polynomial] = {}
    for group in grouped_counts:
        parameter = weight_parameters.get(group)
        group_weight[group] = (
            one + Polynomial.variable(parameter) if parameter else one
        )
    transitions: Dict[State, Dict[State, RationalFunction]] = {}
    for state in states:
        numerators: Dict[State, Polynomial] = {}
        denominator = Polynomial.zero()
        for group, counts in grouped_counts.items():
            row = counts.get(state, {})
            for target, count in row.items():
                weighted = group_weight[group].scaled(count)
                numerators[target] = numerators.get(target, Polynomial.zero()) + (
                    weighted
                )
                denominator = denominator + weighted
        if denominator.is_zero():
            transitions[state] = {state: RationalFunction.one()}
            continue
        transitions[state] = {
            target: RationalFunction(numerator, denominator)
            for target, numerator in numerators.items()
        }
    return ParametricDTMC(
        states=states,
        transitions=transitions,
        initial_state=initial_state,
        labels=labels,
        state_rewards=state_rewards,
    )


def log_likelihood(chain: DTMC, traces: Sequence[Trajectory]) -> float:
    """Log-likelihood of traces under a chain (−inf on impossible steps)."""
    import math

    total = 0.0
    for trace in traces:
        states = trace.states()
        for i in range(len(states) - 1):
            prob = chain.probability(states[i], states[i + 1])
            if prob == 0.0:
                return float("-inf")
            total += math.log(prob)
    return total


def empirical_visit_counts(traces: Sequence[Trajectory]) -> Dict[State, int]:
    """How many times each state is visited across all traces."""
    counts: Dict[State, int] = {}
    for trace in traces:
        for state in trace.states():
            counts[state] = counts.get(state, 0) + 1
    return counts
