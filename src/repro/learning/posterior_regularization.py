"""Posterior-regularised projection of trajectory distributions.

Proposition 4: the KL projection of the MaxEnt trajectory distribution
``P`` onto the rule-respecting subspace (Equations 17–18) has the closed
form

    Q(U) = (1/Z) · P(U) · exp( − Σ_{l, g_l} λ_l · [1 − φ_{l,g_l}(U)] ).

Satisfying trajectories keep their relative probabilities; violating
trajectories are exponentially down-weighted (to 0 as λ → ∞).

``fit_reward_to_distribution`` closes the Reward Repair loop: given the
projected ``Q``, re-estimate a linear reward ``θ'ᵀ f`` whose MaxEnt
distribution matches ``Q`` — by minimising ``KL(Q ‖ P_{θ'})`` with
gradient descent; the gradient is the feature-expectation gap
``E_Q[f] − E_{P_{θ'}}[f]``.
"""

from __future__ import annotations

import math

from typing import Dict, Hashable, Optional, Sequence, Set, Tuple

import numpy as np

from repro.learning.irl import FeatureMap
from repro.learning.trajectory_distribution import TrajectoryDistribution
from repro.logic.rules import Rule, total_penalty
from repro.mdp.model import MDP
from repro.mdp.trajectory import Trajectory

State = Hashable


def project_distribution(
    distribution: TrajectoryDistribution,
    rules: Sequence[Rule],
) -> TrajectoryDistribution:
    """The Proposition 4 projection of ``distribution`` onto the rules.

    Examples
    --------
    With a single rule of weight λ, a trajectory violating one grounding
    has its probability multiplied by ``exp(−λ)`` (then renormalised);
    fully satisfying trajectories keep their mutual ratios exactly.
    """
    return distribution.reweighted(
        lambda trajectory: -total_penalty(rules, trajectory)
    )


def expected_rule_satisfaction(
    distribution: TrajectoryDistribution, rule: Rule
) -> float:
    """``E[φ_{l,g}(U)]`` averaged over groundings — 1 when always satisfied."""

    def satisfaction(trajectory: Trajectory) -> float:
        groundings = rule.grounding_count(trajectory)
        if groundings == 0:
            return 1.0
        return 1.0 - rule.violation_count(trajectory) / groundings

    return distribution.expectation(satisfaction)


def _feature_expectation(
    distribution: TrajectoryDistribution, features: FeatureMap
) -> np.ndarray:
    total = np.zeros(features.dimension)
    for trajectory, probability in distribution.probabilities.items():
        for state in trajectory.states():
            total += probability * features(state)
    return total


def fit_reward_to_distribution(
    mdp: MDP,
    features: FeatureMap,
    target: TrajectoryDistribution,
    horizon: int,
    stop_states: Optional[Set[State]] = None,
    initial_theta: Optional[np.ndarray] = None,
    learning_rate: float = 0.05,
    max_iterations: int = 400,
    tolerance: float = 1e-5,
) -> Tuple[np.ndarray, Dict[State, float]]:
    """Re-estimate reward weights whose MaxEnt distribution matches ``Q``.

    Returns ``(theta, state_rewards)``.  The optimisation is moment
    matching: descend ``KL(Q ‖ P_θ)`` whose gradient in θ is
    ``E_{P_θ}[f] − E_Q[f]``.
    """
    target_features = _feature_expectation(target, features)
    theta = (
        np.zeros(features.dimension)
        if initial_theta is None
        else np.asarray(initial_theta, dtype=float).copy()
    )
    for _ in range(max_iterations):
        rewards = {
            state: float(features(state) @ theta) for state in mdp.states
        }
        model = TrajectoryDistribution.from_maxent(
            mdp, rewards, horizon, stop_states=stop_states
        )
        gradient = target_features - _feature_expectation(model, features)
        theta = theta + learning_rate * gradient
        if np.linalg.norm(gradient) < tolerance:
            break
    rewards = {state: float(features(state) @ theta) for state in mdp.states}
    return theta, rewards


def sampled_projection_feature_expectation(
    mdp: MDP,
    features: FeatureMap,
    state_rewards,
    rules: Sequence[Rule],
    horizon: int,
    samples: int = 2_000,
    seed: Optional[int] = None,
):
    """``E_Q[f]`` estimated without enumerating trajectories.

    The paper's large-model route: draw trajectories from the Equation 16
    distribution ``P`` with the Metropolis sampler, then self-normalised
    importance weighting with ``w(U) = exp(−Σ λ[1−φ(U)])`` turns them
    into expectations under the Proposition 4 projection ``Q``.

    Returns ``(feature_expectation, violation_probability_estimate)``.
    """
    import numpy as np

    from repro.learning.trajectory_distribution import (
        MetropolisTrajectorySampler,
    )
    from repro.logic.rules import all_satisfied, total_penalty

    sampler = MetropolisTrajectorySampler(
        mdp, state_rewards, horizon, seed=seed
    )
    draws = sampler.sample(samples)
    weights = np.array(
        [math.exp(-total_penalty(rules, u)) for u in draws]
    )
    total = weights.sum()
    if total == 0:
        raise ValueError("all sampled trajectories have zero projected weight")
    weights /= total
    expectation = np.zeros(features.dimension)
    violation = 0.0
    for weight, trajectory in zip(weights, draws):
        for state in trajectory.states():
            expectation += weight * features(state)
        if not all_satisfied(rules, trajectory):
            violation += weight
    return expectation, float(violation)


def fit_reward_to_sampled_projection(
    mdp: MDP,
    features: FeatureMap,
    state_rewards,
    rules: Sequence[Rule],
    horizon: int,
    samples: int = 2_000,
    seed: Optional[int] = None,
    initial_theta: Optional["np.ndarray"] = None,
    learning_rate: float = 0.05,
    max_iterations: int = 200,
    tolerance: float = 1e-4,
):
    """Moment-match θ' to the *sampled* projection (large-model route).

    ``E_Q[f]`` comes from importance-weighted Metropolis samples; the
    model side ``E_{P_θ}[f]`` is computed exactly with the MaxEnt
    forward-backward machinery, so only the target side carries Monte
    Carlo noise.  Returns ``(theta, state_rewards)``.
    """
    import numpy as np

    from repro.learning.irl import MaxEntIRL

    target_features, _ = sampled_projection_feature_expectation(
        mdp, features, state_rewards, rules, horizon, samples=samples, seed=seed
    )
    machinery = MaxEntIRL(mdp, features, horizon=horizon)
    theta = (
        np.zeros(features.dimension)
        if initial_theta is None
        else np.asarray(initial_theta, dtype=float).copy()
    )
    for _ in range(max_iterations):
        expected = machinery.expected_feature_counts(theta, horizon)
        gradient = target_features - expected
        theta = theta + learning_rate * gradient
        if np.linalg.norm(gradient) < tolerance:
            break
    rewards = {state: float(features(state) @ theta) for state in mdp.states}
    return theta, rewards
