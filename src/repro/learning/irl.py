"""Maximum-entropy inverse reinforcement learning (Ziebart et al. 2008).

This is the paper's learning procedure for the reward function ``R``
(Section IV-C): rewards are linear in state features,
``reward(s) = θᵀ f(s)`` with ``‖θ‖₂ ≤ 1``, and the trajectory
distribution is Equation 16,

    P(U | θ, P) ∝ exp( Σ_i θᵀ f(s_i) ) · Π_i P(s_{i+1} | s_i, a_i).

Learning maximises the demonstration log-likelihood; the gradient is the
difference between empirical and expected feature counts.  Expected
counts come from the standard soft (log-space) backward pass over a
finite horizon followed by a forward state-visitation pass.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy.special import logsumexp

from repro.mdp.model import MDP
from repro.mdp.trajectory import Trajectory

State = Hashable
Action = Hashable


class FeatureMap:
    """Maps states to feature vectors ``f(s) ∈ R^k``."""

    def __init__(self, function: Callable[[State], np.ndarray], dimension: int):
        self.function = function
        self.dimension = dimension

    def __call__(self, state: State) -> np.ndarray:
        vector = np.asarray(self.function(state), dtype=float)
        if vector.shape != (self.dimension,):
            raise ValueError(
                f"feature map returned shape {vector.shape}, "
                f"expected ({self.dimension},)"
            )
        return vector


class TabularFeatureMap(FeatureMap):
    """A feature map backed by an explicit table.

    Examples
    --------
    >>> features = TabularFeatureMap({"s0": [1.0, 0.0], "s1": [0.0, 1.0]})
    >>> features("s1")
    array([0., 1.])
    """

    def __init__(self, table: Mapping[State, Sequence[float]]):
        table = {state: np.asarray(row, dtype=float) for state, row in table.items()}
        dimensions = {row.shape for row in table.values()}
        if len(dimensions) != 1:
            raise ValueError("all feature rows must share one dimension")
        (dimension,) = dimensions
        super().__init__(lambda s: table[s], dimension[0])
        self.table = table


class MaxEntIRLResult:
    """Outcome of MaxEnt IRL.

    Attributes
    ----------
    theta:
        The learned weight vector.
    state_rewards:
        ``{state: θᵀ f(state)}``.
    converged:
        Whether the gradient norm fell below tolerance.
    iterations:
        Gradient steps taken.
    """

    def __init__(
        self,
        theta: np.ndarray,
        state_rewards: Dict[State, float],
        converged: bool,
        iterations: int,
    ):
        self.theta = theta
        self.state_rewards = state_rewards
        self.converged = converged
        self.iterations = iterations

    def apply_to(self, mdp: MDP) -> MDP:
        """The MDP with its state rewards replaced by the learned ones."""
        return mdp.with_rewards(state_rewards=self.state_rewards)

    def __repr__(self) -> str:
        theta = np.array2string(self.theta, precision=3)
        return (
            f"MaxEntIRLResult(theta={theta}, converged={self.converged}, "
            f"iterations={self.iterations})"
        )


class MaxEntIRL:
    """Maximum-entropy IRL on a tabular MDP.

    Parameters
    ----------
    mdp:
        The dynamics (transition probabilities are taken as known).
    features:
        State feature map ``f``.
    horizon:
        Trajectory length for the soft backward/forward passes; defaults
        to the longest demonstration.
    learning_rate / max_iterations / tolerance:
        Exponentiated-gradient-ascent hyperparameters.
    project_to_unit_ball:
        Enforce the paper's ``‖θ‖₂ ≤ 1`` after every step.
    """

    def __init__(
        self,
        mdp: MDP,
        features: FeatureMap,
        horizon: Optional[int] = None,
        learning_rate: float = 0.1,
        max_iterations: int = 500,
        tolerance: float = 1e-5,
        project_to_unit_ball: bool = True,
    ):
        self.mdp = mdp
        self.features = features
        self.horizon = horizon
        self.learning_rate = learning_rate
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.project_to_unit_ball = project_to_unit_ball
        self._feature_matrix = np.stack([features(s) for s in mdp.states])

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def fit(self, demonstrations: Sequence[Trajectory]) -> MaxEntIRLResult:
        """Learn θ from expert demonstrations."""
        if not demonstrations:
            raise ValueError("need at least one demonstration")
        horizon = self.horizon or max(len(demo) for demo in demonstrations)
        empirical = self._empirical_feature_counts(demonstrations)
        theta = np.zeros(self.features.dimension)
        converged = False
        iteration = 0
        for iteration in range(1, self.max_iterations + 1):
            expected = self.expected_feature_counts(theta, horizon)
            gradient = empirical - expected
            theta = theta + self.learning_rate * gradient
            if self.project_to_unit_ball:
                norm = np.linalg.norm(theta)
                if norm > 1.0:
                    theta = theta / norm
            if np.linalg.norm(gradient) < self.tolerance:
                converged = True
                break
        rewards = {
            s: float(self._feature_matrix[i] @ theta)
            for i, s in enumerate(self.mdp.states)
        }
        return MaxEntIRLResult(theta, rewards, converged, iteration)

    # ------------------------------------------------------------------
    # Feature counts
    # ------------------------------------------------------------------
    def _empirical_feature_counts(
        self, demonstrations: Sequence[Trajectory]
    ) -> np.ndarray:
        total = np.zeros(self.features.dimension)
        for demo in demonstrations:
            for state in demo.states():
                total += self.features(state)
        return total / len(demonstrations)

    def expected_feature_counts(self, theta: np.ndarray, horizon: int) -> np.ndarray:
        """Expected feature counts under the MaxEnt policy for θ."""
        visitation = self.state_visitation_frequencies(theta, horizon)
        return visitation @ self._feature_matrix

    def soft_policy(
        self, theta: np.ndarray, horizon: int
    ) -> Dict[State, Dict[Action, float]]:
        """The local action distribution of the MaxEnt model (log-space).

        Backward recursion over ``horizon`` steps:
        ``log Z_{s,a} = Σ_t P(t|s,a) log-mass(t)`` aggregated through
        ``logsumexp``; the policy is ``Z_{s,a} / Z_s``.
        """
        states = self.mdp.states
        index = self.mdp.index
        rewards = self._feature_matrix @ theta
        log_z_state = np.zeros(len(states))
        log_z_action: Dict[Tuple[State, Action], float] = {}
        for _ in range(horizon):
            updated = np.full(len(states), -np.inf)
            for state in states:
                i = index[state]
                action_terms = []
                for action in self.mdp.actions(state):
                    term = rewards[i] + _log_expectation(
                        self.mdp.transitions[state][action], log_z_state, index
                    )
                    log_z_action[(state, action)] = term
                    action_terms.append(term)
                updated[i] = logsumexp(action_terms)
            log_z_state = updated
        policy: Dict[State, Dict[Action, float]] = {}
        for state in states:
            i = index[state]
            actions = self.mdp.actions(state)
            logits = np.array([log_z_action[(state, action)] for action in actions])
            probs = np.exp(logits - logsumexp(logits))
            policy[state] = {a: float(p) for a, p in zip(actions, probs)}
        return policy

    def state_visitation_frequencies(
        self, theta: np.ndarray, horizon: int
    ) -> np.ndarray:
        """``Σ_t D_t(s)`` under the MaxEnt policy, as a vector."""
        policy = self.soft_policy(theta, horizon)
        states = self.mdp.states
        index = self.mdp.index
        current = np.zeros(len(states))
        current[index[self.mdp.initial_state]] = 1.0
        total = current.copy()
        for _ in range(horizon - 1):
            following = np.zeros(len(states))
            for state in states:
                i = index[state]
                if current[i] == 0.0:
                    continue
                for action, action_prob in policy[state].items():
                    for target, prob in self.mdp.transitions[state][action].items():
                        following[index[target]] += current[i] * action_prob * prob
            total += following
            current = following
        return total


def _log_expectation(
    distribution: Mapping[State, float],
    log_values: np.ndarray,
    index: Mapping[State, int],
) -> float:
    """``log Σ_t P(t)·exp(log_values[t])`` computed stably."""
    terms = []
    for target, prob in distribution.items():
        value = log_values[index[target]]
        if value == -np.inf or prob == 0.0:
            continue
        terms.append(np.log(prob) + value)
    if not terms:
        return -np.inf
    return float(logsumexp(terms))
