"""Serialisation: JSON round-trip and PRISM-language export.

``json_io``
    Lossless dictionary/JSON round-trip for chains and MDPs.
``prism``
    Export models in the PRISM modelling language so results can be
    cross-checked against the tool the paper used.
"""

from repro.io.json_io import (
    ctmc_from_dict,
    ctmc_to_dict,
    dtmc_from_dict,
    dtmc_to_dict,
    interval_dtmc_from_dict,
    interval_dtmc_to_dict,
    interval_mdp_from_dict,
    interval_mdp_to_dict,
    load_model,
    mdp_from_dict,
    mdp_to_dict,
    model_from_payload,
    model_to_payload,
    save_model,
)
from repro.io.prism import dtmc_to_prism, mdp_to_prism
from repro.io.dot import dtmc_to_dot, mdp_to_dot, repair_diff_to_dot
from repro.io.prism_parser import PrismParseError, load_prism, parse_prism

__all__ = [
    "dtmc_to_dict",
    "dtmc_from_dict",
    "mdp_to_dict",
    "mdp_from_dict",
    "ctmc_to_dict",
    "ctmc_from_dict",
    "interval_dtmc_to_dict",
    "interval_dtmc_from_dict",
    "interval_mdp_to_dict",
    "interval_mdp_from_dict",
    "model_to_payload",
    "model_from_payload",
    "save_model",
    "load_model",
    "dtmc_to_prism",
    "mdp_to_prism",
    "dtmc_to_dot",
    "mdp_to_dot",
    "repair_diff_to_dot",
    "parse_prism",
    "load_prism",
    "PrismParseError",
]
