"""JSON round-trip serialisation for models.

State identifiers are stringified on the way out and kept as strings on
the way in (JSON has no tuple keys); models that need richer state types
should map them before saving.  ``save_model``/``load_model`` add a
``kind`` discriminator so a file is self-describing;
``model_to_payload``/``model_from_payload`` expose the same
discriminated shape in-memory (DTMC, MDP and CTMC) for the service
layer and the repair results' canonical ``to_dict`` form.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from repro.mdp.model import DTMC, MDP


def dtmc_to_dict(chain: DTMC) -> Dict:
    """A JSON-ready dictionary capturing the full chain."""
    return {
        "states": [str(s) for s in chain.states],
        "initial_state": str(chain.initial_state),
        "transitions": {
            str(s): {str(t): p for t, p in row.items()}
            for s, row in chain.transitions.items()
        },
        "labels": {
            str(s): sorted(props)
            for s, props in chain.labels.items()
            if props
        },
        "state_rewards": {
            str(s): r for s, r in chain.state_rewards.items() if r != 0.0
        },
    }


def dtmc_from_dict(payload: Dict) -> DTMC:
    """Rebuild a chain saved by :func:`dtmc_to_dict`."""
    return DTMC(
        states=payload["states"],
        transitions=payload["transitions"],
        initial_state=payload["initial_state"],
        labels={s: set(props) for s, props in payload.get("labels", {}).items()},
        state_rewards=payload.get("state_rewards", {}),
    )


def mdp_to_dict(mdp: MDP) -> Dict:
    """A JSON-ready dictionary capturing the full MDP."""
    return {
        "states": [str(s) for s in mdp.states],
        "initial_state": str(mdp.initial_state),
        "transitions": {
            str(s): {
                str(a): {str(t): p for t, p in dist.items()}
                for a, dist in rows.items()
            }
            for s, rows in mdp.transitions.items()
        },
        "labels": {
            str(s): sorted(props) for s, props in mdp.labels.items() if props
        },
        "state_rewards": {
            str(s): r for s, r in mdp.state_rewards.items() if r != 0.0
        },
        "action_rewards": [
            {"state": str(s), "action": str(a), "reward": r}
            for (s, a), r in mdp.action_rewards.items()
        ],
    }


def mdp_from_dict(payload: Dict) -> MDP:
    """Rebuild an MDP saved by :func:`mdp_to_dict`."""
    return MDP(
        states=payload["states"],
        transitions=payload["transitions"],
        initial_state=payload["initial_state"],
        labels={s: set(props) for s, props in payload.get("labels", {}).items()},
        state_rewards=payload.get("state_rewards", {}),
        action_rewards={
            (entry["state"], entry["action"]): entry["reward"]
            for entry in payload.get("action_rewards", [])
        },
    )


def ctmc_to_dict(ctmc) -> Dict:
    """A JSON-ready dictionary capturing the full CTMC."""
    return {
        "states": [str(s) for s in ctmc.states],
        "initial_state": str(ctmc.initial_state),
        "rates": {
            str(s): {str(t): r for t, r in row.items()}
            for s, row in ctmc.rates.items()
            if row
        },
        "labels": {
            str(s): sorted(props)
            for s, props in ctmc.labels.items()
            if props
        },
    }


def ctmc_from_dict(payload: Dict):
    """Rebuild a CTMC saved by :func:`ctmc_to_dict`."""
    from repro.ctmc.model import CTMC

    return CTMC(
        states=payload["states"],
        rates=payload.get("rates", {}),
        initial_state=payload["initial_state"],
        labels={s: set(props) for s, props in payload.get("labels", {}).items()},
    )


def interval_dtmc_to_dict(interval) -> Dict:
    """A JSON-ready dictionary capturing an interval chain.

    Interval bounds serialise as two-element ``[lower, upper]`` lists.
    """
    return {
        "states": [str(s) for s in interval.states],
        "initial_state": str(interval.initial_state),
        "intervals": {
            str(s): {
                str(t): [lower, upper] for t, (lower, upper) in row.items()
            }
            for s, row in interval.intervals.items()
        },
        "labels": {
            str(s): sorted(props)
            for s, props in interval.labels.items()
            if props
        },
        "state_rewards": {
            str(s): r for s, r in interval.state_rewards.items() if r != 0.0
        },
    }


def interval_dtmc_from_dict(payload: Dict):
    """Rebuild an interval chain saved by :func:`interval_dtmc_to_dict`."""
    from repro.mdp.interval import IntervalDTMC

    return IntervalDTMC(
        states=payload["states"],
        intervals={
            s: {t: (bounds[0], bounds[1]) for t, bounds in row.items()}
            for s, row in payload["intervals"].items()
        },
        initial_state=payload["initial_state"],
        labels={s: set(props) for s, props in payload.get("labels", {}).items()},
        state_rewards=payload.get("state_rewards", {}),
    )


def interval_mdp_to_dict(interval) -> Dict:
    """A JSON-ready dictionary capturing an interval MDP."""
    return {
        "states": [str(s) for s in interval.states],
        "initial_state": str(interval.initial_state),
        "intervals": {
            str(s): {
                str(a): {
                    str(t): [lower, upper]
                    for t, (lower, upper) in row.items()
                }
                for a, row in rows.items()
            }
            for s, rows in interval.intervals.items()
        },
        "labels": {
            str(s): sorted(props)
            for s, props in interval.labels.items()
            if props
        },
    }


def interval_mdp_from_dict(payload: Dict):
    """Rebuild an interval MDP saved by :func:`interval_mdp_to_dict`."""
    from repro.mdp.interval import IntervalMDP

    return IntervalMDP(
        states=payload["states"],
        intervals={
            s: {
                a: {t: (bounds[0], bounds[1]) for t, bounds in row.items()}
                for a, row in rows.items()
            }
            for s, rows in payload["intervals"].items()
        },
        initial_state=payload["initial_state"],
        labels={s: set(props) for s, props in payload.get("labels", {}).items()},
    )


def model_to_payload(model) -> Dict:
    """The self-describing ``{"kind", "model"}`` payload of a model."""
    from repro.ctmc.model import CTMC
    from repro.mdp.interval import IntervalDTMC, IntervalMDP

    if isinstance(model, DTMC):
        return {"kind": "dtmc", "model": dtmc_to_dict(model)}
    if isinstance(model, MDP):
        return {"kind": "mdp", "model": mdp_to_dict(model)}
    if isinstance(model, CTMC):
        return {"kind": "ctmc", "model": ctmc_to_dict(model)}
    if isinstance(model, IntervalDTMC):
        return {"kind": "interval-dtmc", "model": interval_dtmc_to_dict(model)}
    if isinstance(model, IntervalMDP):
        return {"kind": "interval-mdp", "model": interval_mdp_to_dict(model)}
    raise TypeError(f"cannot serialise {type(model).__name__}")


def model_from_payload(payload: Dict):
    """Inverse of :func:`model_to_payload`."""
    kind = payload.get("kind")
    if kind == "dtmc":
        return dtmc_from_dict(payload["model"])
    if kind == "mdp":
        return mdp_from_dict(payload["model"])
    if kind == "ctmc":
        return ctmc_from_dict(payload["model"])
    if kind == "interval-dtmc":
        return interval_dtmc_from_dict(payload["model"])
    if kind == "interval-mdp":
        return interval_mdp_from_dict(payload["model"])
    raise ValueError(f"unknown model kind {kind!r}")


def save_model(model, path: Union[str, Path]) -> None:
    """Write a model (DTMC, MDP or CTMC) to a self-describing JSON file."""
    payload = model_to_payload(model)
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_model(path: Union[str, Path]):
    """Read a model written by :func:`save_model`."""
    return model_from_payload(json.loads(Path(path).read_text()))
