"""Graphviz DOT export for models.

Visual inspection of repairs: :func:`repair_diff_to_dot` renders the
original and repaired chain together, highlighting the perturbed edges
with their probability deltas.
"""

from __future__ import annotations

from typing import List, Optional

from repro.mdp.model import DTMC, MDP


def _node_id(model, state) -> str:
    return f"s{model.index[state]}"


def _escape(text) -> str:
    return str(text).replace('"', '\\"')


def dtmc_to_dot(chain: DTMC, name: str = "chain") -> str:
    """The chain as a DOT digraph (labels shown, initial state bold)."""
    lines: List[str] = [f"digraph {name} {{", "  rankdir=LR;"]
    for state in chain.states:
        attributes = [f'label="{_escape(state)}']
        atoms = sorted(chain.labels[state])
        if atoms:
            attributes[0] += "\\n{" + ", ".join(atoms) + "}"
        attributes[0] += '"'
        if state == chain.initial_state:
            attributes.append("penwidth=2")
            attributes.append('shape=doublecircle')
        else:
            attributes.append("shape=circle")
        lines.append(f"  {_node_id(chain, state)} [{', '.join(attributes)}];")
    for source, row in chain.transitions.items():
        for target, probability in row.items():
            lines.append(
                f"  {_node_id(chain, source)} -> {_node_id(chain, target)} "
                f'[label="{probability:.4g}"];'
            )
    lines.append("}")
    return "\n".join(lines) + "\n"


def mdp_to_dot(mdp: MDP, name: str = "mdp") -> str:
    """The MDP as a DOT digraph with action-labelled decision points."""
    lines: List[str] = [f"digraph {name} {{", "  rankdir=LR;"]
    for state in mdp.states:
        shape = "doublecircle" if state == mdp.initial_state else "circle"
        lines.append(
            f'  {_node_id(mdp, state)} [label="{_escape(state)}", shape={shape}];'
        )
    for state in mdp.states:
        for action in mdp.actions(state):
            decision = f"{_node_id(mdp, state)}_a{_escape(action)}"
            lines.append(
                f'  "{decision}" [label="{_escape(action)}", shape=point];'
            )
            lines.append(f'  {_node_id(mdp, state)} -> "{decision}" [arrowhead=none];')
            for target, probability in mdp.transitions[state][action].items():
                lines.append(
                    f'  "{decision}" -> {_node_id(mdp, target)} '
                    f'[label="{probability:.4g}"];'
                )
    lines.append("}")
    return "\n".join(lines) + "\n"


def repair_diff_to_dot(
    original: DTMC,
    repaired: DTMC,
    name: str = "repair",
    tolerance: float = 1e-9,
) -> str:
    """Original vs repaired chain; changed edges red with old→new labels."""
    if original.states != repaired.states:
        raise ValueError("chains must share a state space")
    lines: List[str] = [f"digraph {name} {{", "  rankdir=LR;"]
    for state in original.states:
        shape = (
            "doublecircle" if state == original.initial_state else "circle"
        )
        lines.append(
            f'  {_node_id(original, state)} '
            f'[label="{_escape(state)}", shape={shape}];'
        )
    for source in original.states:
        targets = set(original.transitions[source]) | set(
            repaired.transitions[source]
        )
        for target in sorted(targets, key=str):
            before = original.probability(source, target)
            after = repaired.probability(source, target)
            edge = f"  {_node_id(original, source)} -> {_node_id(original, target)}"
            if abs(after - before) > tolerance:
                lines.append(
                    f'{edge} [label="{before:.4g} → {after:.4g}", '
                    'color=red, fontcolor=red, penwidth=2];'
                )
            else:
                lines.append(f'{edge} [label="{before:.4g}"];')
    lines.append("}")
    return "\n".join(lines) + "\n"
