"""Export models in the PRISM modelling language.

The paper ran its parametric checks in PRISM; these writers let a user
cross-validate this library's numbers against PRISM itself.  States are
encoded as one integer variable ``s`` over the model's state ordering;
labels become PRISM ``label`` declarations and the state reward function
becomes a ``rewards`` block.
"""

from __future__ import annotations

from typing import List

from repro.mdp.model import DTMC, MDP


def _sanitise(name: str) -> str:
    cleaned = "".join(c if c.isalnum() or c == "_" else "_" for c in str(name))
    return cleaned if cleaned and not cleaned[0].isdigit() else f"l_{cleaned}"


def dtmc_to_prism(chain: DTMC, module_name: str = "chain") -> str:
    """The chain as a PRISM ``dtmc`` model (returns the source text)."""
    lines: List[str] = ["dtmc", "", f"module {module_name}"]
    n = chain.num_states
    init = chain.index[chain.initial_state]
    lines.append(f"  s : [0..{n - 1}] init {init};")
    for state in chain.states:
        i = chain.index[state]
        row = chain.transitions[state]
        updates = " + ".join(
            f"{prob:.12g} : (s'={chain.index[target]})"
            for target, prob in sorted(row.items(), key=lambda kv: chain.index[kv[0]])
        )
        lines.append(f"  [] s={i} -> {updates};")
    lines.append("endmodule")
    lines.append("")
    for atom in sorted(chain.atoms()):
        members = sorted(chain.index[s] for s in chain.states_with_atom(atom))
        condition = " | ".join(f"s={i}" for i in members) or "false"
        lines.append(f'label "{_sanitise(atom)}" = {condition};')
    lines.append("")
    lines.append('rewards "default"')
    for state in chain.states:
        reward = chain.state_rewards[state]
        if reward != 0.0:
            lines.append(f"  s={chain.index[state]} : {reward:.12g};")
    lines.append("endrewards")
    return "\n".join(lines) + "\n"


def mdp_to_prism(mdp: MDP, module_name: str = "mdp_model") -> str:
    """The MDP as a PRISM ``mdp`` model (returns the source text)."""
    lines: List[str] = ["mdp", "", f"module {module_name}"]
    n = mdp.num_states
    init = mdp.index[mdp.initial_state]
    lines.append(f"  s : [0..{n - 1}] init {init};")
    for state in mdp.states:
        i = mdp.index[state]
        for action in mdp.actions(state):
            row = mdp.transitions[state][action]
            updates = " + ".join(
                f"{prob:.12g} : (s'={mdp.index[target]})"
                for target, prob in sorted(
                    row.items(), key=lambda kv: mdp.index[kv[0]]
                )
            )
            lines.append(f"  [{_sanitise(f'a_{action}')}] s={i} -> {updates};")
    lines.append("endmodule")
    lines.append("")
    for atom in sorted(mdp.atoms()):
        members = sorted(mdp.index[s] for s in mdp.states_with_atom(atom))
        condition = " | ".join(f"s={i}" for i in members) or "false"
        lines.append(f'label "{_sanitise(atom)}" = {condition};')
    lines.append("")
    lines.append('rewards "default"')
    for state in mdp.states:
        reward = mdp.state_rewards[state]
        if reward != 0.0:
            lines.append(f"  s={mdp.index[state]} : {reward:.12g};")
    lines.append("endrewards")
    return "\n".join(lines) + "\n"
