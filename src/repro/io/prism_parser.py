"""Import models written in the PRISM subset this library exports.

The reader accepts the single-module, single-integer-variable shape that
:func:`repro.io.prism.dtmc_to_prism` / :func:`mdp_to_prism` produce —
which is also how many hand-written PRISM benchmark models for chains
look:

    dtmc
    module name
      s : [0..N] init i;
      [] s=0 -> 0.5 : (s'=1) + 0.5 : (s'=2);
      ...
    endmodule
    label "goal" = s=2 | s=3;
    rewards "default"
      s=0 : 1;
    endrewards

States import as the strings ``"s0" … "sN"`` (PRISM state identity is
the variable valuation, not a name).  MDP commands' action labels become
the imported action names.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple, Union

from repro.mdp.model import DTMC, MDP


class PrismParseError(ValueError):
    """Raised on input outside the supported PRISM subset."""


_MODEL_TYPE = re.compile(r"^\s*(dtmc|mdp)\s*$", re.MULTILINE)
_VARIABLE = re.compile(
    r"^\s*(\w+)\s*:\s*\[\s*(\d+)\s*\.\.\s*(\d+)\s*\]\s*init\s*(\d+)\s*;",
    re.MULTILINE,
)
_COMMAND = re.compile(
    r"^\s*\[(?P<action>[^\]]*)\]\s*(?P<guard>[^-]+)->(?P<updates>[^;]+);",
    re.MULTILINE,
)
_GUARD = re.compile(r"^\s*(\w+)\s*=\s*(\d+)\s*$")
_UPDATE = re.compile(
    r"(?P<prob>[0-9.eE+-]+)\s*:\s*\(\s*(\w+)\s*'\s*=\s*(?P<target>\d+)\s*\)"
)
_LABEL = re.compile(r'^\s*label\s+"(?P<name>[^"]+)"\s*=\s*(?P<expr>[^;]+);',
                    re.MULTILINE)
_LABEL_TERM = re.compile(r"(\w+)\s*=\s*(\d+)")
_REWARD_ITEM = re.compile(
    r"^\s*(\w+)\s*=\s*(\d+)\s*:\s*([0-9.eE+-]+)\s*;", re.MULTILINE
)


def _state_name(index: int) -> str:
    return f"s{index}"


def parse_prism(text: str) -> Union[DTMC, MDP]:
    """Parse PRISM source text into a :class:`DTMC` or :class:`MDP`.

    Raises :class:`PrismParseError` on input outside the supported
    subset (multiple variables, guards over several variables,
    synchronising multi-module systems, ...).
    """
    kind_match = _MODEL_TYPE.search(text)
    if not kind_match:
        raise PrismParseError("missing model type (expected 'dtmc' or 'mdp')")
    kind = kind_match.group(1)

    variables = _VARIABLE.findall(text)
    if len(variables) != 1:
        raise PrismParseError(
            f"expected exactly one state variable, found {len(variables)}"
        )
    _name, low, high, init = variables[0]
    if int(low) != 0:
        raise PrismParseError("state variable must start at 0")
    count = int(high) + 1
    states = [_state_name(i) for i in range(count)]
    initial = _state_name(int(init))

    commands: List[Tuple[str, int, Dict[str, float]]] = []
    for match in _COMMAND.finditer(text):
        guard_match = _GUARD.match(match.group("guard"))
        if not guard_match:
            raise PrismParseError(
                f"unsupported guard {match.group('guard').strip()!r}"
            )
        source = int(guard_match.group(2))
        updates: Dict[str, float] = {}
        update_text = match.group("updates")
        found = list(_UPDATE.finditer(update_text))
        if not found:
            raise PrismParseError(
                f"unsupported update {update_text.strip()!r}"
            )
        for update in found:
            target = _state_name(int(update.group("target")))
            updates[target] = updates.get(target, 0.0) + float(
                update.group("prob")
            )
        commands.append((match.group("action").strip(), source, updates))

    labels: Dict[str, set] = {}
    for match in _LABEL.finditer(text):
        for _var, index in _LABEL_TERM.findall(match.group("expr")):
            labels.setdefault(_state_name(int(index)), set()).add(
                match.group("name")
            )

    rewards = {
        _state_name(int(index)): float(value)
        for _var, index, value in _REWARD_ITEM.findall(text)
    }

    if kind == "dtmc":
        transitions: Dict[str, Dict[str, float]] = {}
        for action, source, updates in commands:
            if action:
                raise PrismParseError("dtmc commands must be unlabelled")
            state = _state_name(source)
            if state in transitions:
                raise PrismParseError(f"duplicate dtmc command for state {source}")
            transitions[state] = updates
        return DTMC(
            states=states,
            transitions=transitions,
            initial_state=initial,
            labels=labels,
            state_rewards=rewards,
        )

    mdp_transitions: Dict[str, Dict[str, Dict[str, float]]] = {}
    for position, (action, source, updates) in enumerate(commands):
        state = _state_name(source)
        name = action or f"cmd{position}"
        mdp_transitions.setdefault(state, {})[name] = updates
    for state in states:
        mdp_transitions.setdefault(state, {"stay": {state: 1.0}})
    return MDP(
        states=states,
        transitions=mdp_transitions,
        initial_state=initial,
        labels=labels,
        state_rewards=rewards,
    )


def load_prism(path) -> Union[DTMC, MDP]:
    """Read and parse a PRISM model file."""
    from pathlib import Path

    return parse_prism(Path(path).read_text())
