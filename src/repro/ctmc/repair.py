"""Rate repair for CTMCs — the continuous-time analogue of Model Repair.

To enforce "the expected time to reach the target is at most T", scale
the controllable states' outgoing rates by ``(1 + v_s)``.  Both pieces
of the expected-time computation are then rational functions of ``v``:

* the embedded chain's probabilities ``R(s,t)/E(s)`` are unchanged by a
  uniform row scaling, but per-*edge* controllability is supported by
  scaling edges individually, and
* the holding times ``1/E(s)`` become ``1/((1+v_s)·E(s))``.

So the problem reduces — exactly like Propositions 2–3 — to a rational
constraint solved by the shared repair core: the embedded chain is
lifted to a :class:`~repro.checking.parametric.ParametricDTMC` with a
synthetic target label, the expected-time bound becomes an ``R ≤ T [F
target]`` formula, and both the symbolic elimination and the concrete
expected-time checks are memoised through the
:class:`~repro.checking.cache.CheckCache` (including any persistent
backing store), like every other repair flavour.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Hashable, Optional, Sequence, Set

from repro.checking.cache import CheckCache, get_cache
from repro.checking.parametric import ParametricDTMC
from repro.ctmc.model import CTMC
from repro.logic.pctl import AtomicProposition, Eventually, RewardOperator
from repro.optimize import Variable
from repro.repair import ParametricSpec, RepairProblem, RepairResult, solve_repair
from repro.symbolic import Polynomial, RationalFunction

State = Hashable

#: Synthetic label marking the hitting set on the embedded parametric
#: chain, so the bound becomes an ordinary ``R <= T [F target]`` formula.
_TARGET_LABEL = "__rate_repair_target__"

#: Absolute tolerance for the concrete post-repair expected-time check
#: (the NLP's safety margin keeps solutions well inside this).
_VERIFY_TOLERANCE = 1e-9


class RateRepairResult(RepairResult):
    """Outcome of a CTMC rate repair.

    Carries the shared :class:`~repro.repair.RepairResult` fields plus:

    Attributes
    ----------
    scales:
        Solved per-state rate multipliers ``1 + v_s``.
    repaired_ctmc:
        The CTMC with scaled rates (``None`` when infeasible).
    expected_time:
        Expected hitting time of the result (or of the original model
        when already satisfied or infeasible).
    """

    flavor = "rate"

    def __init__(
        self,
        status: str,
        scales: Dict[State, float],
        repaired_ctmc: Optional[CTMC],
        expected_time: float,
        verified: Optional[bool] = None,
        message: str = "",
        solver_stats: Optional[Dict[str, int]] = None,
        objective_value: float = 0.0,
    ):
        super().__init__(
            status=status,
            assignment=scales,
            objective_value=objective_value,
            verified=(status != "infeasible") if verified is None else verified,
            message=message,
            solver_stats=solver_stats,
        )
        self.repaired_ctmc = repaired_ctmc
        self.expected_time = expected_time

    @property
    def scales(self) -> Dict[State, float]:
        """The per-state rate multipliers (alias of ``assignment``)."""
        return self.assignment

    def extra_payload(self) -> Dict:
        from repro.io.json_io import model_to_payload

        return {
            "scales": {
                str(state): float(scale)
                for state, scale in self.scales.items()
            },
            "expected_time": float(self.expected_time),
            "repaired_ctmc": (
                None
                if self.repaired_ctmc is None
                else model_to_payload(self.repaired_ctmc)
            ),
        }

    @classmethod
    def _from_payload(cls, payload) -> "RateRepairResult":
        from repro.io.json_io import model_from_payload

        repaired = payload.get("repaired_ctmc")
        return cls(
            status=payload["status"],
            scales=payload.get("scales", {}),
            repaired_ctmc=(
                None if repaired is None else model_from_payload(repaired)
            ),
            expected_time=payload.get("expected_time", 0.0),
            verified=payload.get("verified", False),
            message=payload.get("message", ""),
            solver_stats=payload.get("solver_stats", {}),
            objective_value=payload.get("objective_value", 0.0),
        )

    def _repr_extra(self) -> str:
        return f"expected_time={self.expected_time:.4g}"

    def describe(self) -> str:
        return (
            f"status={self.status}, "
            f"expected_time={self.expected_time:.4g}"
        )


def _ctmc_fingerprint(ctmc: CTMC) -> str:
    """Stable content fingerprint of a CTMC (rates + labels + start)."""
    digest = hashlib.sha256()
    digest.update(repr(ctmc.states).encode("utf-8"))
    digest.update(repr(ctmc.initial_state).encode("utf-8"))
    for state in ctmc.states:
        for target, rate in sorted(
            ctmc.rates[state].items(), key=lambda item: str(item[0])
        ):
            digest.update(f"{target!r}->{rate!r}".encode("utf-8"))
            digest.update(b"\x01")
        digest.update(repr(sorted(ctmc.labels[state])).encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def _cached_expected_time(
    ctmc: CTMC,
    targets: Set[State],
    cache: Optional[CheckCache] = None,
) -> float:
    """Memoised ``E[time to targets]`` from the initial state."""
    store = get_cache(cache)
    key = (
        "ctmc-expected-time",
        _ctmc_fingerprint(ctmc),
        frozenset(repr(target) for target in targets),
    )
    return float(
        store.get_or_compute(
            key, lambda: ctmc.expected_time_to(targets)[ctmc.initial_state]
        )
    )


def _embedded_parametric_model(
    ctmc: CTMC,
    targets: Set[State],
    controllable: Sequence[State],
) -> ParametricDTMC:
    """The embedded chain with symbolic holding times and target labels.

    The expected *reward* to the labelled states on this chain equals
    the expected hitting *time* on the CTMC, as a rational function of
    the rate-scale variables ``v_s``.
    """
    transitions: Dict[State, Dict[State, object]] = {}
    rewards: Dict[State, object] = {}
    labels: Dict[State, Set[str]] = {
        state: set(ctmc.labels[state]) for state in ctmc.states
    }
    for state in targets:
        labels[state].add(_TARGET_LABEL)
    for state in ctmc.states:
        exit_rate = ctmc.exit_rate(state)
        if state in targets or exit_rate == 0:
            transitions[state] = {state: 1}
            rewards[state] = 0
            continue
        # Embedded probabilities are scale-invariant under uniform row
        # scaling; only the holding time changes.
        transitions[state] = {
            target: rate / exit_rate
            for target, rate in ctmc.rates[state].items()
        }
        if state in controllable:
            scale = Polynomial.one() + Polynomial.variable(f"v_{state}")
            rewards[state] = RationalFunction(
                Polynomial.one(), scale.scaled(exit_rate)
            )
        else:
            rewards[state] = 1.0 / exit_rate
    return ParametricDTMC(
        states=ctmc.states,
        transitions=transitions,
        initial_state=ctmc.initial_state,
        labels=labels,
        state_rewards=rewards,
    )


class RateRepair:
    """A configured CTMC rate-repair problem; call :meth:`repair`.

    Parameters
    ----------
    ctmc / targets / bound:
        Require ``E[time to reach targets] ≤ bound`` from the initial
        state.
    controllable:
        States whose exit rates may be scaled (default: all transient
        non-target states).
    max_speedup:
        Upper bound on each multiplier ``1 + v_s`` (hardware limits on
        how much faster a component can be made); must exceed 1.
    cache:
        Memo for the symbolic closed form and the concrete
        expected-time checks; ``None`` selects the process-wide cache.
    """

    def __init__(
        self,
        ctmc: CTMC,
        targets: Set[State],
        bound: float,
        controllable: Optional[Sequence[State]] = None,
        max_speedup: float = 2.0,
        cache: Optional[CheckCache] = None,
    ):
        if max_speedup <= 1.0:
            raise ValueError("max_speedup must exceed 1")
        self.ctmc = ctmc
        self.targets = set(targets)
        self.bound = float(bound)
        if controllable is None:
            controllable = [
                s
                for s in ctmc.states
                if s not in self.targets and ctmc.exit_rate(s) > 0
            ]
        self.controllable = list(controllable)
        self.max_speedup = float(max_speedup)
        self.cache = cache

    # ------------------------------------------------------------------
    # Pieces
    # ------------------------------------------------------------------
    def original_expected_time(self) -> float:
        """``E[time]`` of the unrepaired CTMC (memoised)."""
        return _cached_expected_time(self.ctmc, self.targets, self.cache)

    def _scales(self, assignment: Dict[str, float]) -> Dict[State, float]:
        return {
            state: 1.0 + assignment.get(f"v_{state}", 0.0)
            for state in self.controllable
        }

    def _instantiate(self, assignment: Dict[str, float]) -> CTMC:
        scales = self._scales(assignment)
        return CTMC(
            states=self.ctmc.states,
            rates={
                s: {
                    t: rate * scales.get(s, 1.0)
                    for t, rate in self.ctmc.rates[s].items()
                }
                for s in self.ctmc.states
            },
            initial_state=self.ctmc.initial_state,
            labels=self.ctmc.labels,
        )

    def problem(self) -> RepairProblem:
        """The declarative :class:`~repro.repair.RepairProblem`.

        Rate repair in the shared core's terms: the scale offsets
        ``v_s`` as variables, the embedded chain's expected reward as a
        parametric ``R ≤ T [F target]`` side condition (eliminated
        through the memoized cache), and a concrete expected-time
        re-check as verification.
        """
        formula = RewardOperator(
            "<=", self.bound, Eventually(AtomicProposition(_TARGET_LABEL))
        )
        return RepairProblem(
            name="rate-repair",
            variables=[
                Variable(f"v_{state}", 0.0, self.max_speedup - 1.0, initial=0.0)
                for state in self.controllable
            ],
            cost="frobenius",
            parametric=[
                ParametricSpec(
                    _embedded_parametric_model(
                        self.ctmc, self.targets, self.controllable
                    ),
                    formula,
                )
            ],
            original=self.ctmc,
            check=lambda: self.original_expected_time() <= self.bound,
            instantiate=self._instantiate,
            verify=lambda repaired: (
                _cached_expected_time(repaired, self.targets, self.cache)
                <= self.bound + _VERIFY_TOLERANCE
            ),
            already_satisfied_message="expected time already within the bound",
            no_variable_message="no controllable state can be sped up",
            cache=self.cache,
        )

    def repair(self, extra_starts: int = 6, seed: int = 0) -> RateRepairResult:
        """Run rate repair through the shared driver."""
        outcome = solve_repair(
            self.problem(), extra_starts=extra_starts, seed=seed
        )
        if outcome.status == "already_satisfied":
            return RateRepairResult(
                status="already_satisfied",
                scales={},
                repaired_ctmc=self.ctmc,
                expected_time=self.original_expected_time(),
                verified=True,
                message=outcome.message,
            )
        scales = self._scales(outcome.assignment) if outcome.assignment else {}
        if outcome.status == "infeasible":
            return RateRepairResult(
                status="infeasible",
                scales=scales,
                repaired_ctmc=None,
                expected_time=self.original_expected_time(),
                verified=False,
                message=outcome.message,
                solver_stats=outcome.solver_stats,
                objective_value=outcome.objective_value,
            )
        achieved = _cached_expected_time(
            outcome.artifact, self.targets, self.cache
        )
        return RateRepairResult(
            status="repaired",
            scales=scales,
            repaired_ctmc=outcome.artifact,
            expected_time=achieved,
            verified=outcome.verified,
            message=outcome.message,
            solver_stats=outcome.solver_stats,
            objective_value=outcome.objective_value,
        )


def expected_time_repair(
    ctmc: CTMC,
    targets: Set[State],
    bound: float,
    controllable: Optional[Sequence[State]] = None,
    max_speedup: float = 2.0,
    extra_starts: int = 6,
    seed: int = 0,
    cache: Optional[CheckCache] = None,
) -> RateRepairResult:
    """Scale controllable rates so ``E[time to targets] ≤ bound``.

    A function-style wrapper over :class:`RateRepair` (kept as the
    historical entry point); see that class for parameter semantics.
    """
    repair = RateRepair(
        ctmc,
        targets,
        bound,
        controllable=controllable,
        max_speedup=max_speedup,
        cache=cache,
    )
    return repair.repair(extra_starts=extra_starts, seed=seed)
