"""Rate repair for CTMCs — the continuous-time analogue of Model Repair.

To enforce "the expected time to reach the target is at most T", scale
the controllable states' outgoing rates by ``(1 + v_s)``.  Both pieces
of the expected-time computation are then rational functions of ``v``:

* the embedded chain's probabilities ``R(s,t)/E(s)`` are unchanged by a
  uniform row scaling, but per-*edge* controllability is supported by
  scaling edges individually, and
* the holding times ``1/E(s)`` become ``1/((1+v_s)·E(s))``.

So the problem reduces — exactly like Propositions 2–3 — to a rational
constraint solved by the shared NLP layer, here with the closed-form
expected time evaluated through the parametric machinery.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Sequence, Set

from repro.ctmc.model import CTMC
from repro.checking.parametric import ParametricDTMC
from repro.core.costs import frobenius_cost
from repro.optimize import Constraint, NonlinearProgram, Variable
from repro.symbolic import Polynomial, RationalFunction

State = Hashable


class RateRepairResult:
    """Outcome of a CTMC rate repair.

    Attributes
    ----------
    status:
        ``"already_satisfied"``, ``"repaired"`` or ``"infeasible"``.
    scales:
        Solved per-state rate multipliers ``1 + v_s``.
    repaired_ctmc:
        The CTMC with scaled rates (``None`` when infeasible).
    expected_time:
        Expected hitting time of the result (or of the original model
        when already satisfied).
    """

    def __init__(
        self,
        status: str,
        scales: Dict[State, float],
        repaired_ctmc: Optional[CTMC],
        expected_time: float,
    ):
        self.status = status
        self.scales = dict(scales)
        self.repaired_ctmc = repaired_ctmc
        self.expected_time = expected_time

    @property
    def feasible(self) -> bool:
        """True unless the repair problem was infeasible."""
        return self.status != "infeasible"

    def __repr__(self) -> str:
        return (
            f"RateRepairResult(status={self.status!r}, "
            f"expected_time={self.expected_time:.4g})"
        )


def _parametric_expected_time(
    ctmc: CTMC,
    targets: Set[State],
    controllable: Sequence[State],
) -> RationalFunction:
    """Expected hitting time as a rational function of the rate scales."""
    transitions: Dict[State, Dict[State, object]] = {}
    rewards: Dict[State, object] = {}
    for state in ctmc.states:
        exit_rate = ctmc.exit_rate(state)
        if state in targets or exit_rate == 0:
            transitions[state] = {state: 1}
            rewards[state] = 0
            continue
        # Embedded probabilities are scale-invariant under uniform row
        # scaling; only the holding time changes.
        transitions[state] = {
            target: rate / exit_rate
            for target, rate in ctmc.rates[state].items()
        }
        if state in controllable:
            scale = Polynomial.one() + Polynomial.variable(f"v_{state}")
            rewards[state] = RationalFunction(
                Polynomial.one(), scale.scaled(exit_rate)
            )
        else:
            rewards[state] = 1.0 / exit_rate
    model = ParametricDTMC(
        states=ctmc.states,
        transitions=transitions,
        initial_state=ctmc.initial_state,
        labels=ctmc.labels,
        state_rewards=rewards,
    )
    return model.expected_reward(targets)


def expected_time_repair(
    ctmc: CTMC,
    targets: Set[State],
    bound: float,
    controllable: Optional[Sequence[State]] = None,
    max_speedup: float = 2.0,
    extra_starts: int = 6,
    seed: int = 0,
) -> RateRepairResult:
    """Scale controllable rates so ``E[time to targets] ≤ bound``.

    Parameters
    ----------
    controllable:
        States whose exit rates may be scaled (default: all transient
        non-target states).
    max_speedup:
        Upper bound on each multiplier ``1 + v_s`` (hardware limits on
        how much faster a component can be made).
    """
    targets = set(targets)
    original_time = ctmc.expected_time_to(targets)[ctmc.initial_state]
    if original_time <= bound:
        return RateRepairResult("already_satisfied", {}, ctmc, original_time)
    if controllable is None:
        controllable = [
            s
            for s in ctmc.states
            if s not in targets and ctmc.exit_rate(s) > 0
        ]
    controllable = list(controllable)
    if not controllable:
        return RateRepairResult("infeasible", {}, None, original_time)
    if max_speedup <= 1.0:
        raise ValueError("max_speedup must exceed 1")

    function = _parametric_expected_time(ctmc, targets, controllable)
    variables = [
        Variable(f"v_{state}", 0.0, max_speedup - 1.0, initial=0.0)
        for state in controllable
    ]
    program = NonlinearProgram(
        variables=variables,
        objective=frobenius_cost,
        constraints=[
            Constraint(
                lambda v: bound - float(function.evaluate(v)),
                name="expected-time",
                shift=1e-6 * max(1.0, bound),
            )
        ],
    )
    outcome = program.solve(extra_starts=extra_starts, seed=seed)
    scales = {
        state: 1.0 + outcome.assignment[f"v_{state}"] for state in controllable
    }
    if not outcome.feasible:
        return RateRepairResult("infeasible", scales, None, original_time)
    repaired = CTMC(
        states=ctmc.states,
        rates={
            s: {
                t: rate * scales.get(s, 1.0)
                for t, rate in ctmc.rates[s].items()
            }
            for s in ctmc.states
        },
        initial_state=ctmc.initial_state,
        labels=ctmc.labels,
    )
    achieved = repaired.expected_time_to(targets)[repaired.initial_state]
    return RateRepairResult("repaired", scales, repaired, achieved)
