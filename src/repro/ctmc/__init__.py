"""Continuous-time Markov chains.

The paper notes its approach extends to other dynamical models; this
package provides the continuous-time substrate: CTMCs with exact
uniformisation-based transient analysis, embedded/uniformised chain
views, steady-state distributions, CSL-style time-bounded reachability
— and *rate repair*, which reduces to the same parametric-checking +
NLP pipeline as Model Repair because the embedded chain's probabilities
and holding times are rational functions of the rates.
"""

from repro.ctmc.model import CTMC
from repro.ctmc.repair import RateRepair, RateRepairResult, expected_time_repair

__all__ = ["CTMC", "RateRepair", "expected_time_repair", "RateRepairResult"]
