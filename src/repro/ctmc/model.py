"""Continuous-time Markov chains with uniformisation-based analysis.

A CTMC is given by transition *rates* ``R(s, t) > 0`` (``t ≠ s``); the
exit rate is ``E(s) = Σ_t R(s, t)`` and the sojourn in ``s`` is
exponential with rate ``E(s)``.  States with no outgoing rate are
absorbing.

Provided analyses:

* the embedded jump chain and the uniformised chain (both DTMCs, so the
  whole discrete tool-chain applies);
* transient state distributions at time ``t`` by uniformisation with an
  adaptive Poisson truncation;
* time-bounded reachability ``Pr(F≤t targets)`` (CSL's workhorse);
* expected time to absorption / to a target set;
* the steady-state distribution of an irreducible chain.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Set

import numpy as np

from repro.mdp.model import DTMC, ModelValidationError

State = Hashable


class CTMC:
    """A labelled continuous-time Markov chain.

    Parameters
    ----------
    states:
        State identifiers.
    rates:
        ``{source: {target: rate}}`` with positive rates and no
        self-entries; missing sources are absorbing.
    initial_state / labels:
        As for :class:`~repro.mdp.DTMC`.

    Examples
    --------
    >>> ctmc = CTMC(
    ...     states=["up", "down"],
    ...     rates={"up": {"down": 0.1}, "down": {"up": 2.0}},
    ...     initial_state="up",
    ... )
    >>> round(ctmc.exit_rate("down"), 3)
    2.0
    """

    def __init__(
        self,
        states,
        rates: Mapping[State, Mapping[State, float]],
        initial_state: State,
        labels: Optional[Mapping[State, Iterable[str]]] = None,
    ):
        self.states = list(states)
        if initial_state not in set(self.states):
            raise ModelValidationError(f"unknown initial state {initial_state!r}")
        self.initial_state = initial_state
        self.index = {s: i for i, s in enumerate(self.states)}
        self.rates: Dict[State, Dict[State, float]] = {}
        for state in self.states:
            row = dict(rates.get(state, {}))
            for target, rate in row.items():
                if target not in self.index:
                    raise ModelValidationError(f"unknown target {target!r}")
                if target == state:
                    raise ModelValidationError(
                        f"self-rate on {state!r}; use the diagonal implicitly"
                    )
                if rate <= 0:
                    raise ModelValidationError(
                        f"rate {state!r}->{target!r} must be positive"
                    )
            self.rates[state] = {t: float(r) for t, r in row.items()}
        self.labels = {
            s: frozenset((labels or {}).get(s, frozenset())) for s in self.states
        }

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def exit_rate(self, state: State) -> float:
        """Total outgoing rate ``E(state)`` (0 for absorbing states)."""
        return sum(self.rates[state].values())

    def max_exit_rate(self) -> float:
        """The uniformisation rate lower bound ``max_s E(s)``."""
        return max((self.exit_rate(s) for s in self.states), default=0.0)

    def generator_matrix(self) -> np.ndarray:
        """The infinitesimal generator ``Q`` (rows sum to 0)."""
        n = len(self.states)
        q = np.zeros((n, n))
        for state, row in self.rates.items():
            i = self.index[state]
            for target, rate in row.items():
                q[i, self.index[target]] = rate
            q[i, i] = -self.exit_rate(state)
        return q

    def states_with_atom(self, atom: str):
        """All states labelled with ``atom``."""
        return frozenset(s for s, props in self.labels.items() if atom in props)

    # ------------------------------------------------------------------
    # Discrete views
    # ------------------------------------------------------------------
    def embedded_dtmc(self) -> DTMC:
        """The jump chain: ``P(s, t) = R(s, t) / E(s)``."""
        transitions: Dict[State, Dict[State, float]] = {}
        for state in self.states:
            exit_rate = self.exit_rate(state)
            if exit_rate == 0:
                transitions[state] = {state: 1.0}
            else:
                transitions[state] = {
                    target: rate / exit_rate
                    for target, rate in self.rates[state].items()
                }
        return DTMC(
            states=self.states,
            transitions=transitions,
            initial_state=self.initial_state,
            labels=self.labels,
        )

    def uniformized_dtmc(self, rate: Optional[float] = None) -> DTMC:
        """The uniformised chain at rate ``Λ ≥ max exit rate``."""
        uniform_rate = rate if rate is not None else self.max_exit_rate()
        if uniform_rate <= 0:
            raise ValueError("uniformisation rate must be positive")
        if uniform_rate < self.max_exit_rate() - 1e-12:
            raise ValueError("uniformisation rate below the max exit rate")
        transitions: Dict[State, Dict[State, float]] = {}
        for state in self.states:
            row = {
                target: rate_value / uniform_rate
                for target, rate_value in self.rates[state].items()
            }
            stay = 1.0 - self.exit_rate(state) / uniform_rate
            if stay > 0:
                row[state] = row.get(state, 0.0) + stay
            transitions[state] = row
        return DTMC(
            states=self.states,
            transitions=transitions,
            initial_state=self.initial_state,
            labels=self.labels,
        )

    # ------------------------------------------------------------------
    # Transient analysis (uniformisation)
    # ------------------------------------------------------------------
    def transient_distribution(
        self, time: float, tolerance: float = 1e-12
    ) -> Dict[State, float]:
        """State distribution at time ``t`` from the initial state.

        Uniformisation: ``π(t) = Σ_k Poisson(k; Λt) · π₀ Pᵘᵏ`` with the
        series truncated once the accumulated Poisson mass reaches
        ``1 − tolerance``.
        """
        if time < 0:
            raise ValueError("time must be non-negative")
        n = len(self.states)
        initial = np.zeros(n)
        initial[self.index[self.initial_state]] = 1.0
        uniform_rate = self.max_exit_rate()
        if uniform_rate == 0 or time == 0:
            return {s: float(initial[self.index[s]]) for s in self.states}
        matrix = self.uniformized_dtmc(uniform_rate).transition_matrix()
        poisson_rate = uniform_rate * time
        log_weight = -poisson_rate
        weight = math.exp(log_weight)
        accumulated = weight
        current = initial.copy()
        result = weight * current
        k = 0
        while accumulated < 1.0 - tolerance and k < 100_000:
            k += 1
            current = current @ matrix
            weight *= poisson_rate / k
            result += weight * current
            accumulated += weight
        return {s: float(result[self.index[s]]) for s in self.states}

    def time_bounded_reachability(
        self, targets: Set[State], time: float, tolerance: float = 1e-12
    ) -> float:
        """``Pr(F≤t targets)`` from the initial state.

        Standard CSL reduction: make the targets absorbing, then the
        transient probability mass in the targets at time ``t`` is the
        bounded reachability probability.
        """
        targets = set(targets)
        if self.initial_state in targets:
            return 1.0
        absorbed = CTMC(
            states=self.states,
            rates={
                s: ({} if s in targets else dict(self.rates[s]))
                for s in self.states
            },
            initial_state=self.initial_state,
            labels=self.labels,
        )
        distribution = absorbed.transient_distribution(time, tolerance)
        return float(sum(distribution[s] for s in targets))

    # ------------------------------------------------------------------
    # Long-run and expected-time analysis
    # ------------------------------------------------------------------
    def expected_time_to(self, targets: Set[State]) -> Dict[State, float]:
        """Expected time to hit ``targets`` from every state.

        ``τ(s) = 1/E(s) + Σ_t P_emb(s, t) τ(t)``; ``inf`` where the
        targets are not reached almost surely.
        """
        from repro.mdp.solvers import expected_total_reward

        embedded = self.embedded_dtmc()
        holding = {
            s: (0.0 if s in targets or self.exit_rate(s) == 0
                else 1.0 / self.exit_rate(s))
            for s in self.states
        }
        timed = embedded.with_rewards(holding)
        return expected_total_reward(timed, set(targets))

    def steady_state(self) -> Dict[State, float]:
        """The stationary distribution ``π Q = 0, Σπ = 1``.

        Requires irreducibility (raises otherwise: the linear system
        yields a non-positive or non-unique solution).
        """
        n = len(self.states)
        q = self.generator_matrix()
        # Replace one balance equation with the normalisation constraint.
        system = np.vstack([q.T[:-1], np.ones(n)])
        rhs = np.zeros(n)
        rhs[-1] = 1.0
        solution, residual, rank, _ = np.linalg.lstsq(system, rhs, rcond=None)
        if rank < n or np.any(solution < -1e-9):
            raise ValueError("steady state undefined (chain not irreducible?)")
        solution = np.clip(solution, 0.0, None)
        solution /= solution.sum()
        return {s: float(solution[self.index[s]]) for s in self.states}

    def __repr__(self) -> str:
        return f"CTMC(|S|={len(self.states)}, init={self.initial_state!r})"
