"""Potential-based reward shaping (Ng, Harada & Russell, ICML 1999).

Shaping adds ``F(s, a, s') = γ·Φ(s') − Φ(s)`` to the reward.  The
classic theorem: the optimal policy is *invariant* under potential-based
shaping.  As a trusted-ML baseline this is exactly the limitation the
paper contrasts Reward Repair against — shaping can speed learning but
can never turn an unsafe optimal policy into a safe one, whereas Reward
Repair deliberately changes the optimal policy.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Tuple

from repro.mdp.model import MDP

State = Hashable
Action = Hashable
Potential = Callable[[State], float]


def shaping_action_rewards(
    mdp: MDP, potential: Potential, discount: float
) -> Dict[Tuple[State, Action], float]:
    """The shaping term ``E_{s'}[γΦ(s')] − Φ(s)`` per state-action."""
    rewards: Dict[Tuple[State, Action], float] = {}
    for state in mdp.states:
        for action in mdp.actions(state):
            expected_next = sum(
                prob * potential(target)
                for target, prob in mdp.transitions[state][action].items()
            )
            rewards[(state, action)] = discount * expected_next - potential(state)
    return rewards


def shaped_mdp(mdp: MDP, potential: Potential, discount: float) -> MDP:
    """The MDP with potential-based shaping folded into action rewards.

    By the Ng–Harada–Russell theorem the optimal policy of the result
    equals that of ``mdp`` (verified by the test suite and the baseline
    ablation benchmark).
    """
    shaping = shaping_action_rewards(mdp, potential, discount)
    combined = dict(mdp.action_rewards)
    for key, value in shaping.items():
        combined[key] = combined.get(key, 0.0) + value
    return mdp.with_rewards(action_rewards=combined)
