"""Baselines from the paper's related-work section.

``reward_shaping``
    Potential-based reward shaping (Ng, Harada & Russell 1999).  The
    invariance theorem means shaping *cannot* change an unsafe optimal
    policy — the contrast motivating Reward Repair (Section VI).
``constrained_policy``
    A Lagrangian constrained-policy-optimisation baseline (Achiam et
    al.'s CMDP setting, tabular): expected auxiliary cost constraints
    instead of logical constraints.
``greedy_repair``
    Greedy coordinate-stepping repair baselines for Model and Data
    Repair — what one would do without the parametric-checking + NLP
    reduction; used by the ablation benchmarks.
"""

from repro.baselines.reward_shaping import shaped_mdp, shaping_action_rewards
from repro.baselines.constrained_policy import (
    LagrangianResult,
    lagrangian_constrained_policy,
)
from repro.baselines.greedy_repair import (
    GreedyRepairResult,
    greedy_data_repair,
    greedy_model_repair,
)

__all__ = [
    "shaped_mdp",
    "shaping_action_rewards",
    "lagrangian_constrained_policy",
    "LagrangianResult",
    "greedy_model_repair",
    "greedy_data_repair",
    "GreedyRepairResult",
]
