"""Greedy repair baselines (ablation comparators).

Without the paper's parametric-checking + nonlinear-programming
reduction, the natural approach is greedy coordinate stepping: nudge one
repair parameter at a time, re-checking the model concretely after each
step, until the property holds or no step helps.  The ablation
benchmarks compare this against the NLP route on repair cost (it is
typically worse — greedy overshoots the cheap direction) and on solver
calls.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Optional, Sequence

from repro.checking.dtmc import DTMCModelChecker
from repro.checking.parametric import ParametricDTMC
from repro.core.costs import frobenius_cost
from repro.data.dataset import TraceDataset
from repro.logic.pctl import (
    ProbabilisticOperator,
    RewardOperator,
    StateFormula,
)
from repro.mdp.model import DTMC, ModelValidationError
from repro.optimize import Variable

Assignment = Dict[str, float]


class GreedyRepairResult:
    """Outcome of a greedy repair run.

    Attributes
    ----------
    feasible:
        Whether a satisfying assignment was found.
    assignment:
        The parameter values reached.
    cost:
        Repair cost at the final assignment.
    checks:
        Number of concrete model-checker calls spent.
    repaired_model:
        Instantiated model when feasible, else ``None``.
    """

    def __init__(
        self,
        feasible: bool,
        assignment: Assignment,
        cost: float,
        checks: int,
        repaired_model: Optional[DTMC],
    ):
        self.feasible = feasible
        self.assignment = dict(assignment)
        self.cost = cost
        self.checks = checks
        self.repaired_model = repaired_model

    def __repr__(self) -> str:
        return (
            f"GreedyRepairResult(feasible={self.feasible}, "
            f"cost={self.cost:.6g}, checks={self.checks})"
        )


def _property_value(chain: DTMC, formula: StateFormula) -> float:
    """The quantitative value the formula's comparison ranges over."""
    result = DTMCModelChecker(chain).check(formula)
    if result.value is None:
        raise ValueError("greedy repair needs a top-level P or R operator")
    return result.value


def _improvement_sign(formula: StateFormula) -> float:
    """+1 when larger values help satisfy the formula, −1 otherwise."""
    if isinstance(formula, (ProbabilisticOperator, RewardOperator)):
        return 1.0 if formula.comparison in (">", ">=") else -1.0
    raise ValueError("greedy repair needs a top-level P or R operator")


def greedy_model_repair(
    parametric_model: ParametricDTMC,
    formula: StateFormula,
    variables: Sequence[Variable],
    step: float = 0.01,
    max_steps: int = 500,
    cost: Callable[[Assignment], float] = frobenius_cost,
) -> GreedyRepairResult:
    """Greedy coordinate stepping over the repair parameters.

    Each round tries ``± step`` on every parameter (respecting bounds),
    instantiates, re-checks concretely, and keeps the move with the best
    property improvement.  Stops when satisfied, stuck, or out of steps.
    """
    assignment: Assignment = {v.name: v.initial for v in variables}
    bounds = {v.name: (v.lower, v.upper) for v in variables}
    sign = _improvement_sign(formula)
    checks = 0

    def instantiate(point: Assignment) -> Optional[DTMC]:
        try:
            return parametric_model.instantiate(point)
        except (ModelValidationError, ZeroDivisionError):
            return None

    chain = instantiate(assignment)
    if chain is None:
        raise ValueError("initial assignment is not a valid model")
    checks += 1
    if DTMCModelChecker(chain).check(formula).holds:
        return GreedyRepairResult(True, assignment, cost(assignment), checks, chain)
    value = _property_value(chain, formula)
    for _ in range(max_steps):
        best_move: Optional[Assignment] = None
        best_value = value
        best_chain = None
        for variable in variables:
            for direction in (+step, -step):
                candidate = dict(assignment)
                lower, upper = bounds[variable.name]
                moved = min(max(candidate[variable.name] + direction, lower), upper)
                if moved == candidate[variable.name]:
                    continue
                candidate[variable.name] = moved
                candidate_chain = instantiate(candidate)
                if candidate_chain is None:
                    continue
                checks += 1
                candidate_value = _property_value(candidate_chain, formula)
                if sign * (candidate_value - best_value) > 1e-12:
                    best_move = candidate
                    best_value = candidate_value
                    best_chain = candidate_chain
        if best_move is None:
            return GreedyRepairResult(
                False, assignment, cost(assignment), checks, None
            )
        assignment, value, chain = best_move, best_value, best_chain
        if DTMCModelChecker(chain).check(formula).holds:
            return GreedyRepairResult(
                True, assignment, cost(assignment), checks, chain
            )
    return GreedyRepairResult(False, assignment, cost(assignment), checks, None)


def greedy_data_repair(
    dataset: TraceDataset,
    build_repair,
    step: float = 0.02,
    max_steps: int = 500,
) -> GreedyRepairResult:
    """Greedy stepping over per-group drop probabilities.

    ``build_repair`` is a callable ``dataset -> DataRepair`` (the same
    factory the pipeline uses); its parametric model and formula drive
    the greedy loop.
    """
    repair = build_repair(dataset)
    parametric = repair.parametric_model()
    variables = [
        Variable(f"drop_{name}", 0.0, repair.max_drop, initial=0.0)
        for name in dataset.droppable_groups()
    ]
    return greedy_model_repair(
        parametric_model=parametric,
        formula=repair.formula,
        variables=variables,
        step=step,
        max_steps=max_steps,
    )
