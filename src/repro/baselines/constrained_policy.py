"""Lagrangian constrained policy optimisation (CMDP baseline).

The related-work comparator (Achiam et al., Constrained Policy
Optimization): constraints are *expectations of auxiliary costs*
``E[Σ γ^t c(s_t)] ≤ d`` rather than logical formulas.  The tabular
solution is Lagrangian: maximise ``reward − λ·cost`` and bisect on the
multiplier ``λ`` until the cost constraint is (just) met.

The ablation benchmark uses this to show where expectation constraints
and logical constraints differ: a CMDP constraint on expected collision
cost can trade a little collision probability for reward, while the
paper's Reward Repair drives rule-violating trajectories to probability
zero.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Optional, Tuple

from repro.mdp.model import MDP
from repro.mdp.policy import DeterministicPolicy
from repro.mdp.solvers import policy_evaluation, value_iteration

State = Hashable


class LagrangianResult:
    """Outcome of the Lagrangian CMDP solve.

    Attributes
    ----------
    policy:
        The best cost-feasible policy found (or the min-cost policy if
        none is feasible).
    multiplier:
        The final Lagrange multiplier λ.
    expected_reward / expected_cost:
        Discounted values of the returned policy at the initial state.
    feasible:
        Whether the cost bound is met.
    """

    def __init__(
        self,
        policy: DeterministicPolicy,
        multiplier: float,
        expected_reward: float,
        expected_cost: float,
        feasible: bool,
    ):
        self.policy = policy
        self.multiplier = multiplier
        self.expected_reward = expected_reward
        self.expected_cost = expected_cost
        self.feasible = feasible

    def __repr__(self) -> str:
        return (
            f"LagrangianResult(lambda={self.multiplier:.4g}, "
            f"reward={self.expected_reward:.4g}, "
            f"cost={self.expected_cost:.4g}, feasible={self.feasible})"
        )


def _evaluate(
    mdp: MDP,
    policy: DeterministicPolicy,
    rewards: Dict[State, float],
    discount: float,
) -> float:
    """Discounted value of ``policy`` at the initial state under rewards."""
    surrogate = mdp.with_rewards(state_rewards=rewards)
    values = policy_evaluation(surrogate, policy, discount)
    return values[mdp.initial_state]


def lagrangian_constrained_policy(
    mdp: MDP,
    cost: Callable[[State], float],
    cost_bound: float,
    discount: float = 0.95,
    max_multiplier: float = 1e4,
    iterations: int = 60,
) -> LagrangianResult:
    """Solve ``max E[reward] s.t. E[discounted cost] ≤ cost_bound``.

    Bisection on the multiplier: λ too small → cost constraint violated;
    λ large → conservative.  Each inner solve is plain value iteration
    on the scalarised reward ``r(s) − λ·c(s)``.
    """
    reward_map = {s: mdp.state_rewards[s] for s in mdp.states}
    cost_map = {s: float(cost(s)) for s in mdp.states}

    def solve(multiplier: float) -> Tuple[DeterministicPolicy, float, float]:
        scalarised = {
            s: reward_map[s] - multiplier * cost_map[s] for s in mdp.states
        }
        _, policy = value_iteration(
            mdp.with_rewards(state_rewards=scalarised), discount=discount
        )
        achieved_reward = _evaluate(mdp, policy, reward_map, discount)
        achieved_cost = _evaluate(mdp, policy, cost_map, discount)
        return policy, achieved_reward, achieved_cost

    low, high = 0.0, max_multiplier
    policy, reward_value, cost_value = solve(low)
    if cost_value <= cost_bound:
        return LagrangianResult(policy, low, reward_value, cost_value, True)
    best: Optional[LagrangianResult] = None
    for _ in range(iterations):
        mid = (low + high) / 2.0
        policy, reward_value, cost_value = solve(mid)
        if cost_value <= cost_bound:
            candidate = LagrangianResult(policy, mid, reward_value, cost_value, True)
            if best is None or candidate.expected_reward > best.expected_reward:
                best = candidate
            high = mid
        else:
            low = mid
    if best is not None:
        return best
    policy, reward_value, cost_value = solve(max_multiplier)
    return LagrangianResult(
        policy,
        max_multiplier,
        reward_value,
        cost_value,
        cost_value <= cost_bound,
    )
