"""Rational functions: quotients of multivariate polynomials.

These are the values manipulated by the parametric model checker.  Every
transition probability of a parametric Markov chain is a
:class:`RationalFunction`; state elimination combines them with ``+ - * /``
and the final reachability probability (or expected reward) is again a
rational function of the repair parameters.

Normalisation policy
--------------------
After every arithmetic operation the quotient is normalised so that

* the denominator is never the zero polynomial,
* numerator and denominator share no rational-constant content,
* the denominator's leading coefficient is positive, and
* (best effort) the polynomial GCD of numerator and denominator is
  cancelled — with a size cap, so pathological inputs degrade to an
  unreduced but still correct representation instead of hanging.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping, Union

from repro.symbolic.polynomial import Polynomial, Scalar, poly_gcd

_REDUCE_SIZE_LIMIT = 200

# Bounded memo of normalised (numerator, denominator) pairs.  State
# elimination rebuilds the same quotients constantly (every redirection
# divides by the same ``1 − p(s, s)``), so the content/GCD work repeats;
# the table is flushed wholesale at the cap — a miss only re-computes.
_NORMALISE_CACHE = {}
_NORMALISE_LIMIT = 1 << 14


class RationalFunction:
    """An exact quotient ``numerator / denominator`` of polynomials.

    Examples
    --------
    >>> x = RationalFunction.variable("x")
    >>> f = (x * x - 1) / (x - 1)
    >>> f.evaluate({"x": 3})
    Fraction(4, 1)
    """

    __slots__ = ("numerator", "denominator", "_hash", "_compiled")

    def __init__(
        self,
        numerator: Union[Polynomial, Scalar],
        denominator: Union[Polynomial, Scalar, None] = None,
    ):
        if not isinstance(numerator, Polynomial):
            numerator = Polynomial.constant(numerator)
        if denominator is None:
            denominator = Polynomial.one()
        elif not isinstance(denominator, Polynomial):
            denominator = Polynomial.constant(denominator)
        if denominator.is_zero():
            raise ZeroDivisionError("rational function with zero denominator")
        numerator, denominator = _normalise(numerator, denominator)
        self.numerator = numerator
        self.denominator = denominator
        self._hash = None
        self._compiled = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def constant(value: Scalar) -> "RationalFunction":
        """The constant rational function ``value``."""
        return RationalFunction(Polynomial.constant(value))

    @staticmethod
    def variable(name: str) -> "RationalFunction":
        """The rational function consisting of the variable ``name``."""
        return RationalFunction(Polynomial.variable(name))

    @staticmethod
    def zero() -> "RationalFunction":
        """The zero function."""
        return RationalFunction(Polynomial.zero())

    @staticmethod
    def one() -> "RationalFunction":
        """The unit function."""
        return RationalFunction(Polynomial.one())

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def is_zero(self) -> bool:
        """True if this is identically zero."""
        return self.numerator.is_zero()

    def is_constant(self) -> bool:
        """True if both numerator and denominator are constants."""
        return self.numerator.is_constant() and self.denominator.is_constant()

    def constant_value(self) -> Fraction:
        """The value of a constant function (raises otherwise)."""
        return self.numerator.constant_value() / self.denominator.constant_value()

    def variables(self) -> frozenset:
        """All parameter names occurring in numerator or denominator."""
        return self.numerator.variables() | self.denominator.variables()

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "RationalFunction":
        other = _coerce(other)
        if other is NotImplemented:
            return NotImplemented
        if self.denominator == other.denominator:
            return RationalFunction(
                self.numerator + other.numerator, self.denominator
            )
        return RationalFunction(
            self.numerator * other.denominator + other.numerator * self.denominator,
            self.denominator * other.denominator,
        )

    __radd__ = __add__

    def __neg__(self) -> "RationalFunction":
        return RationalFunction(-self.numerator, self.denominator)

    def __sub__(self, other) -> "RationalFunction":
        other = _coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return self + (-other)

    def __rsub__(self, other) -> "RationalFunction":
        return _coerce(other) - self

    def __mul__(self, other) -> "RationalFunction":
        other = _coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return RationalFunction(
            self.numerator * other.numerator, self.denominator * other.denominator
        )

    __rmul__ = __mul__

    def __truediv__(self, other) -> "RationalFunction":
        other = _coerce(other)
        if other is NotImplemented:
            return NotImplemented
        if other.is_zero():
            raise ZeroDivisionError("division of rational functions by zero")
        return RationalFunction(
            self.numerator * other.denominator, self.denominator * other.numerator
        )

    def __rtruediv__(self, other) -> "RationalFunction":
        return _coerce(other) / self

    def __pow__(self, exponent: int) -> "RationalFunction":
        if exponent < 0:
            return RationalFunction(
                self.denominator ** (-exponent), self.numerator ** (-exponent)
            )
        return RationalFunction(self.numerator**exponent, self.denominator**exponent)

    def __eq__(self, other) -> bool:
        other = _coerce(other)
        if other is NotImplemented:
            return NotImplemented
        # Cross-multiplication avoids relying on canonical reduction.
        return (
            self.numerator * other.denominator == other.numerator * self.denominator
        )

    def __hash__(self) -> int:
        if self._hash is None:
            if self.is_constant():
                self._hash = hash(self.constant_value())
            else:
                self._hash = hash((self.numerator, self.denominator))
        return self._hash

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, assignment: Mapping[str, Scalar]):
        """Evaluate at a full parameter assignment.

        Raises ``ZeroDivisionError`` if the denominator vanishes there.
        """
        denom = self.denominator.evaluate(assignment)
        if denom == 0:
            raise ZeroDivisionError(
                f"denominator {self.denominator} vanishes at {dict(assignment)}"
            )
        return self.numerator.evaluate(assignment) / denom

    def substitute(self, assignment: Mapping[str, Scalar]) -> "RationalFunction":
        """Partially substitute parameters, staying symbolic in the rest."""
        return RationalFunction(
            self.numerator.substitute(assignment),
            self.denominator.substitute(assignment),
        )

    def derivative(self, var: str) -> "RationalFunction":
        """Partial derivative (quotient rule)."""
        return RationalFunction(
            self.numerator.derivative(var) * self.denominator
            - self.numerator * self.denominator.derivative(var),
            self.denominator * self.denominator,
        )

    def compiled(self, params=None):
        """The numpy kernel of this function (lazily built, cached).

        Returns a
        :class:`~repro.symbolic.compile.CompiledRationalFunction` whose
        term table is shared between numerator, denominator and every
        partial derivative.  The default-parameter kernel (``params``
        omitted: sorted variable names) is built once and reused;
        explicit orderings compile a fresh kernel each call.
        """
        from repro.symbolic.compile import compile_rational

        if params is not None:
            return compile_rational(self, params)
        try:
            cached = self._compiled
        except AttributeError:  # unpickled from an older on-disk store
            cached = None
        if cached is None:
            cached = compile_rational(self)
            self._compiled = cached
        return cached

    def to_callable(self):
        """Return ``f(assignment_dict) -> float`` for use in optimisers.

        All-numeric assignments are routed through the compiled kernel
        (one shared power-product for numerator and denominator, instead
        of two independent symbolic walks); exact ``Fraction`` inputs
        fall back to the symbolic path so the float conversion happens
        only at the very end, as before.
        """
        numerator, denominator = self.numerator, self.denominator
        kernel = self.compiled()

        def call(assignment: Mapping[str, float]) -> float:
            try:
                return kernel.evaluate_assignment(assignment)
            except (TypeError, ValueError):
                return float(numerator.evaluate(assignment)) / float(
                    denominator.evaluate(assignment)
                )

        return call

    # ------------------------------------------------------------------
    # Formatting
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return f"RationalFunction({self})"

    def __str__(self) -> str:
        if self.denominator == Polynomial.one():
            return str(self.numerator)
        return f"({self.numerator}) / ({self.denominator})"


def _coerce(value) -> "RationalFunction":
    if isinstance(value, RationalFunction):
        return value
    if isinstance(value, Polynomial):
        return RationalFunction(value)
    if isinstance(value, (int, float, Fraction)):
        return RationalFunction.constant(value)
    return NotImplemented


def _normalise(numerator: Polynomial, denominator: Polynomial):
    """Apply the normalisation policy documented in the module docstring."""
    if numerator.is_zero():
        return Polynomial.zero(), Polynomial.one()
    if numerator == denominator:
        return Polynomial.one(), Polynomial.one()
    key = (numerator, denominator)
    cached = _NORMALISE_CACHE.get(key)
    if cached is not None:
        return cached
    original_key = key
    # Cancel rational-constant content.
    num_content = numerator.content()
    den_content = denominator.content()
    if num_content != 0:
        numerator = numerator.scaled(1 / num_content)
    denominator = denominator.scaled(1 / den_content)
    scale = num_content / den_content
    # Attempt polynomial cancellation when the operands are small enough.
    if (
        not denominator.is_constant()
        and len(numerator) <= _REDUCE_SIZE_LIMIT
        and len(denominator) <= _REDUCE_SIZE_LIMIT
    ):
        gcd = poly_gcd(numerator, denominator)
        if not gcd.is_constant():
            numerator = numerator.exact_div(gcd)
            denominator = denominator.exact_div(gcd)
    numerator = numerator.scaled(scale)
    # Positive leading coefficient on the denominator gives a canonical sign.
    _, lead = denominator.leading_term()
    if lead < 0:
        numerator, denominator = -numerator, -denominator
    if len(_NORMALISE_CACHE) >= _NORMALISE_LIMIT:
        _NORMALISE_CACHE.clear()
    _NORMALISE_CACHE[original_key] = (numerator, denominator)
    return numerator, denominator
