"""Symbolic→numeric compilation of polynomials and rational functions.

The repair NLP evaluates the eliminated parametric constraint thousands
of times per solve.  Walking the exact ``Fraction``-keyed monomial
dictionaries of :class:`~repro.symbolic.polynomial.Polynomial` on every
call is the dominant cost, and finite-differencing the gradient
multiplies it by ``n + 1``.  This module lowers a symbolic expression
*once* into flat numpy arrays — an exponent matrix ``E[t, v]`` and a
coefficient vector ``c[t]`` — after which

* ``evaluate(x)`` is one power-product plus one dot product,
* ``evaluate_batch(X)`` scores an ``(m, n)`` matrix of points in a
  single vectorized pass (the multi-start seeder uses this), and
* ``gradient(x)`` comes from precomputed derivative coefficient rows
  over the *same* term table — numerator, denominator and every partial
  derivative share one power-product (common-subexpression sharing), so
  an analytic value-plus-gradient costs barely more than a value.

Kernels are plain data (tuples + numpy arrays): picklable, so the
:class:`~repro.checking.cache.CheckCache` / result-store layer memoizes
them beside the eliminations and warm service runs skip compilation too.

Numeric policy: coefficients are converted to ``float64`` once at
compile time.  Scalar ``evaluate`` raises ``ZeroDivisionError`` on a
vanishing denominator, matching
:meth:`~repro.symbolic.rational.RationalFunction.evaluate`;
``evaluate_batch`` instead lets IEEE semantics produce ``inf``/``nan``
for the offending rows so one bad candidate cannot abort a whole
screening pass.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.symbolic.polynomial import Monomial, Polynomial
from repro.symbolic.rational import RationalFunction

__all__ = [
    "CompiledPolynomial",
    "CompiledRationalFunction",
    "StackedConstraintKernel",
    "compile_polynomial",
    "compile_rational",
    "compile_stack",
    "kernel_stats",
]

#: Process-wide kernel accounting, mirrored into the service telemetry
#: (``kernel_compilations`` / ``kernel_evaluations`` /
#: ``kernel_dispatches``) the same way the
#: :class:`~repro.checking.cache.CheckCache` counters are: callers
#: snapshot :func:`kernel_stats` and emit deltas.
_KERNEL_COUNTER = {"compilations": 0, "evaluations": 0, "dispatches": 0}


def kernel_stats() -> Dict[str, int]:
    """Snapshot of the process-wide kernel counters.

    ``compilations`` counts symbolic→numeric lowerings performed in this
    process (kernels restored from a pickle — e.g. a warm result store —
    do not count); ``evaluations`` counts evaluated *rows* — one per
    point for the single-function kernels, ``points × constraints`` for
    a :class:`StackedConstraintKernel`; ``dispatches`` counts python
    entry calls into any kernel.  ``dispatches / evaluations`` is the
    dispatch ratio the scalability benchmarks report: 1.0 means every
    row paid python call overhead (the dispatch-bound regime), values
    near ``1/(starts × constraints)`` mean the work was fused.
    """
    return dict(_KERNEL_COUNTER)


def _term_table(
    polynomials: Sequence[Polynomial], params: Tuple[str, ...]
) -> Tuple[np.ndarray, List[np.ndarray]]:
    """One shared ``(E, [c_0, c_1, ...])`` table for several polynomials.

    ``E`` is the union exponent matrix over every monomial occurring in
    any input; each polynomial becomes a dense coefficient vector over
    that shared term axis.  Evaluating the power-product ``x**E`` once
    then serves every polynomial with a single dot product each.
    """
    # The term axis is sorted canonically so that mathematically equal
    # polynomials compile to bit-identical kernels no matter how their
    # term dicts were built — elimination order then cannot perturb the
    # float summation order (verdict identity down to the last bit).
    monomials = set()
    for poly in polynomials:
        monomials.update(poly.terms)
    index: Dict[Monomial, int] = {
        mono: row for row, mono in enumerate(sorted(monomials))
    }
    count = len(index)
    exponents = np.zeros((count, len(params)), dtype=np.int64)
    column = {name: j for j, name in enumerate(params)}
    for mono, row in index.items():
        for var, exp in mono:
            exponents[row, column[var]] = exp
    coefficients = []
    for poly in polynomials:
        vector = np.zeros(count, dtype=np.float64)
        for mono, coeff in poly.terms.items():
            vector[index[mono]] = float(coeff)
        coefficients.append(vector)
    return exponents, coefficients


#: Power-of-two magnitude beyond which exact coefficients are rescaled
#: before the float64 conversion (float64 overflows past 2^1024).
_FLOAT_SAFE_EXPONENT = 900


def _magnitude_exponent(poly: Polynomial) -> Optional[int]:
    """≈``log2`` of the largest coefficient magnitude (``None`` if zero)."""
    best = None
    for coeff in poly.terms.values():
        if coeff == 0:
            continue
        k = coeff.numerator.bit_length() - coeff.denominator.bit_length()
        if best is None or k > best:
            best = k
    return best


def _float_safe_pair(
    numerator: Polynomial, denominator: Polynomial
) -> Tuple[Polynomial, Polynomial]:
    """Rescale a num/den pair whose exact coefficients exceed float range.

    State elimination over long-denominator probabilities (e.g. parsed
    6-decimal PRISM models) can produce rational functions whose exact
    ``Fraction`` coefficients overflow ``float64`` even though the
    *quotient* is a tame probability.  Dividing both polynomials by a
    common power of two leaves the quotient (and, consistently, the
    quotient-rule gradient) unchanged — and is exact in binary floating
    point, so in-range kernels are bit-identical to the unscaled ones.
    """
    exponents = [
        e
        for e in (
            _magnitude_exponent(numerator),
            _magnitude_exponent(denominator),
        )
        if e is not None
    ]
    if not exponents:
        return numerator, denominator
    top = max(exponents)
    if abs(top) <= _FLOAT_SAFE_EXPONENT:
        return numerator, denominator
    scale = Fraction(1, 1 << top) if top > 0 else Fraction(1 << (-top))
    return numerator.scaled(scale), denominator.scaled(scale)


def _default_params(*polynomials: Polynomial) -> Tuple[str, ...]:
    names: set = set()
    for poly in polynomials:
        names |= poly.variables()
    return tuple(sorted(names))


#: Above this many shared terms the scalar path stays on numpy — the
#: generated source would be huge, and vectorized dot products win at
#: that size anyway.
_CODEGEN_TERM_LIMIT = 2048


def _polynomial_source(exponents: np.ndarray, coefficients: np.ndarray) -> str:
    """Python source of ``Σ c_t · Π x_j^e`` with zero terms dropped.

    ``repr(float)`` round-trips exactly, so the generated expression
    computes the same float arithmetic the numpy dot product would.
    """
    parts = []
    for row, coeff in zip(exponents, coefficients):
        value = float(coeff)
        if value == 0.0:
            continue
        factors = [repr(value)]
        for j, exp in enumerate(row):
            exp = int(exp)
            if exp == 1:
                factors.append(f"x{j}")
            elif exp == 2:
                factors.append(f"x{j}*x{j}")
            elif exp > 2:
                factors.append(f"x{j}**{exp}")
        parts.append("*".join(factors))
    return " + ".join(parts) if parts else "0.0"


def _scalar_function(name: str, arity: int, expressions: List[str]):
    """Compile ``f(x0, …) -> (expr_0, expr_1, …)`` to Python bytecode.

    Scalar evaluation of a small kernel is dominated by numpy ufunc
    dispatch, not arithmetic; a generated plain-float expression runs
    an order of magnitude faster for the term counts state elimination
    produces.  One function returns every requested expression so
    callers pay the call overhead once per point.
    """
    args = ", ".join(f"x{j}" for j in range(arity))
    body = ", ".join(expressions)
    source = f"def {name}({args}):\n    return ({body}{',' if body else ''})"
    namespace: Dict[str, object] = {}
    exec(compile(source, f"<kernel:{name}>", "exec"), namespace)  # noqa: S102
    return namespace[name]


class _Kernel:
    """Shared power-product machinery over one exponent matrix."""

    def __init__(self, params: Tuple[str, ...], exponents: np.ndarray):
        self.params = params
        self.exponents = exponents
        # Degree-≤1 tables (the common case after state elimination of
        # sparse chains) skip the pow ufunc entirely.
        self._linear = bool((exponents <= 1).all())

    def _powers(self, x: np.ndarray) -> np.ndarray:
        """``(T,)`` vector of monomial values at one point."""
        if self.exponents.size == 0:
            return np.ones(len(self.exponents), dtype=np.float64)
        if self._linear:
            return np.prod(
                np.where(self.exponents == 1, x[np.newaxis, :], 1.0), axis=1
            )
        return np.prod(
            np.power(x[np.newaxis, :], self.exponents), axis=1
        )

    def _powers_batch(self, X: np.ndarray) -> np.ndarray:
        """``(m, T)`` matrix of monomial values at ``m`` points."""
        if self.exponents.size == 0:
            return np.ones((len(X), len(self.exponents)), dtype=np.float64)
        if self._linear:
            return np.prod(
                np.where(
                    self.exponents[np.newaxis, :, :] == 1,
                    X[:, np.newaxis, :],
                    1.0,
                ),
                axis=2,
            )
        return np.prod(
            np.power(X[:, np.newaxis, :], self.exponents[np.newaxis, :, :]),
            axis=2,
        )

    def _vector(self, x) -> np.ndarray:
        vector = np.asarray(x, dtype=np.float64)
        if vector.ndim != 1 or vector.shape[0] != len(self.params):
            raise ValueError(
                f"expected a point with {len(self.params)} coordinates "
                f"(params {self.params}), got shape {vector.shape}"
            )
        return vector

    def _matrix(self, X) -> np.ndarray:
        matrix = np.asarray(X, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != len(self.params):
            raise ValueError(
                f"expected an (m, {len(self.params)}) matrix of points "
                f"(params {self.params}), got shape {matrix.shape}"
            )
        return matrix

    def vector_from(self, assignment: Mapping[str, float]) -> np.ndarray:
        """Point vector in ``params`` order from a name→value mapping."""
        return np.array(
            [float(assignment[name]) for name in self.params],
            dtype=np.float64,
        )

    # ------------------------------------------------------------------
    # Generated scalar fast path
    # ------------------------------------------------------------------
    def _scalar(self):
        """The codegen'd scalar functions, built lazily (or ``None``).

        Generated functions hold compiled code objects and therefore do
        not pickle; :meth:`__getstate__` drops them, and a kernel
        restored from the result store regenerates them on first scalar
        use (cheap relative to the symbolic lowering itself).
        """
        functions = self.__dict__.get("_scalar_fns")
        if functions is None:
            functions = self._build_scalar()
            self._scalar_fns = functions
        return functions or None

    def _build_scalar(self):
        raise NotImplementedError

    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_scalar_fns", None)
        return state


class CompiledPolynomial(_Kernel):
    """A polynomial lowered to ``c @ (x ** E).prod(axis=1)``.

    Built by :func:`compile_polynomial`; evaluation returns plain
    ``float`` / ``float64`` arrays.

    Examples
    --------
    >>> from repro.symbolic import Polynomial
    >>> p = Polynomial.variable("x") * 3 + 1
    >>> compile_polynomial(p).evaluate([2.0])
    7.0
    """

    def __init__(self, polynomial: Polynomial, params: Optional[Sequence[str]] = None):
        params = (
            _default_params(polynomial) if params is None else tuple(params)
        )
        missing = polynomial.variables() - set(params)
        if missing:
            raise ValueError(f"params {params} do not cover {sorted(missing)}")
        derivatives = [polynomial.derivative(name) for name in params]
        exponents, coefficients = _term_table(
            [polynomial] + derivatives, params
        )
        super().__init__(params, exponents)
        self.coefficients = coefficients[0]
        #: ``(n, T)``: row ``i`` holds the coefficients of ``∂p/∂params[i]``
        #: over the shared term table.
        self.gradient_coefficients = (
            np.stack(coefficients[1:])
            if params
            else np.zeros((0, len(self.coefficients)))
        )
        _KERNEL_COUNTER["compilations"] += 1

    def _build_scalar(self):
        if len(self.exponents) > _CODEGEN_TERM_LIMIT:
            return False
        arity = len(self.params)
        return {
            "value": _scalar_function(
                "poly_value",
                arity,
                [_polynomial_source(self.exponents, self.coefficients)],
            ),
            "grad": _scalar_function(
                "poly_grad",
                arity,
                [
                    _polynomial_source(self.exponents, row)
                    for row in self.gradient_coefficients
                ],
            ),
        }

    def evaluate(self, x) -> float:
        """The polynomial's value at one point (``params`` order)."""
        _KERNEL_COUNTER["dispatches"] += 1
        _KERNEL_COUNTER["evaluations"] += 1
        scalar = self._scalar()
        if scalar is not None:
            return scalar["value"](*[float(v) for v in x])[0]
        return float(self.coefficients @ self._powers(self._vector(x)))

    def evaluate_batch(self, X) -> np.ndarray:
        """Values at an ``(m, n)`` matrix of points, as an ``(m,)`` array."""
        matrix = self._matrix(X)
        _KERNEL_COUNTER["dispatches"] += 1
        _KERNEL_COUNTER["evaluations"] += len(matrix)
        return self._powers_batch(matrix) @ self.coefficients

    def gradient(self, x) -> np.ndarray:
        """``(n,)`` gradient at one point, from the derivative rows."""
        _KERNEL_COUNTER["dispatches"] += 1
        _KERNEL_COUNTER["evaluations"] += 1
        scalar = self._scalar()
        if scalar is not None:
            return np.array(
                scalar["grad"](*[float(v) for v in x]), dtype=np.float64
            )
        return self.gradient_coefficients @ self._powers(self._vector(x))


class CompiledRationalFunction(_Kernel):
    """A rational function and its partials over one shared term table.

    Numerator, denominator and all ``2n`` partial-derivative polynomials
    are dense coefficient rows over a single exponent matrix, so
    :meth:`value_and_gradient` computes the power-product once and reads
    everything else off with matrix-vector products.

    Examples
    --------
    >>> from repro.symbolic import Polynomial, RationalFunction
    >>> x = Polynomial.variable("x")
    >>> kernel = compile_rational(RationalFunction(Polynomial.one(), x))
    >>> kernel.evaluate([4.0])
    0.25
    >>> kernel.gradient([4.0])
    array([-0.0625])
    """

    def __init__(
        self,
        function: RationalFunction,
        params: Optional[Sequence[str]] = None,
    ):
        params = (
            _default_params(function.numerator, function.denominator)
            if params is None
            else tuple(params)
        )
        missing = function.variables() - set(params)
        if missing:
            raise ValueError(f"params {params} do not cover {sorted(missing)}")
        numerator, denominator = _float_safe_pair(
            function.numerator, function.denominator
        )
        num_partials = [numerator.derivative(name) for name in params]
        den_partials = [denominator.derivative(name) for name in params]
        exponents, coefficients = _term_table(
            [numerator, denominator] + num_partials + den_partials, params
        )
        super().__init__(params, exponents)
        count = len(params)
        self.numerator_coefficients = coefficients[0]
        self.denominator_coefficients = coefficients[1]
        terms = len(self.numerator_coefficients)
        self.numerator_gradient = (
            np.stack(coefficients[2 : 2 + count])
            if count
            else np.zeros((0, terms))
        )
        self.denominator_gradient = (
            np.stack(coefficients[2 + count :])
            if count
            else np.zeros((0, terms))
        )
        _KERNEL_COUNTER["compilations"] += 1

    def _build_scalar(self):
        if len(self.exponents) > _CODEGEN_TERM_LIMIT:
            return False
        arity = len(self.params)
        numerator = _polynomial_source(
            self.exponents, self.numerator_coefficients
        )
        denominator = _polynomial_source(
            self.exponents, self.denominator_coefficients
        )
        partials = [
            _polynomial_source(self.exponents, row)
            for row in self.numerator_gradient
        ] + [
            _polynomial_source(self.exponents, row)
            for row in self.denominator_gradient
        ]
        return {
            "value": _scalar_function(
                "rational_value", arity, [numerator, denominator]
            ),
            "full": _scalar_function(
                "rational_full", arity, [numerator, denominator] + partials
            ),
        }

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, x) -> float:
        """``f(x)``; raises ``ZeroDivisionError`` on a vanishing denominator."""
        _KERNEL_COUNTER["dispatches"] += 1
        scalar = self._scalar()
        if scalar is not None:
            _KERNEL_COUNTER["evaluations"] += 1
            numerator, denominator = scalar["value"](*[float(v) for v in x])
            if denominator == 0.0:
                raise ZeroDivisionError(
                    f"denominator vanishes at {dict(zip(self.params, x))}"
                )
            return numerator / denominator
        _KERNEL_COUNTER["evaluations"] += 1
        powers = self._powers(self._vector(x))
        denominator = float(self.denominator_coefficients @ powers)
        if denominator == 0.0:
            raise ZeroDivisionError(
                f"denominator vanishes at {dict(zip(self.params, x))}"
            )
        return float(self.numerator_coefficients @ powers) / denominator

    def evaluate_assignment(self, assignment: Mapping[str, float]) -> float:
        """``f`` at a name→value mapping (missing names raise ``KeyError``)."""
        return self.evaluate(
            [float(assignment[name]) for name in self.params]
        )

    def gradient_assignment(
        self, assignment: Mapping[str, float]
    ) -> Dict[str, float]:
        """``∂f/∂name`` mapping at a name→value assignment.

        The hot path of the NLP's analytic constraint jacobians: one
        generated-function call yields numerator, denominator and all
        ``2n`` partials, combined by the quotient rule without any
        array round-trip.
        """
        args = [float(assignment[name]) for name in self.params]
        _KERNEL_COUNTER["dispatches"] += 1
        scalar = self._scalar()
        if scalar is not None:
            _KERNEL_COUNTER["evaluations"] += 1
            out = scalar["full"](*args)
            denominator = out[1]
            if denominator == 0.0:
                raise ZeroDivisionError(
                    f"denominator vanishes at {dict(assignment)}"
                )
            inverse = 1.0 / denominator
            value = out[0] * inverse
            offset = 2 + len(self.params)
            return {
                name: (out[2 + i] - value * out[offset + i]) * inverse
                for i, name in enumerate(self.params)
            }
        gradient = self.value_and_gradient(np.array(args, dtype=np.float64))[1]
        return dict(zip(self.params, gradient))

    def evaluate_batch(self, X) -> np.ndarray:
        """``f`` at an ``(m, n)`` matrix of points, as an ``(m,)`` array.

        Rows where the denominator vanishes yield ``inf``/``nan``
        (IEEE division) rather than raising, so batch screening survives
        isolated bad candidates.
        """
        matrix = self._matrix(X)
        _KERNEL_COUNTER["dispatches"] += 1
        _KERNEL_COUNTER["evaluations"] += len(matrix)
        powers = self._powers_batch(matrix)
        with np.errstate(divide="ignore", invalid="ignore"):
            return (powers @ self.numerator_coefficients) / (
                powers @ self.denominator_coefficients
            )

    def gradient(self, x) -> np.ndarray:
        """``∇f`` at one point via the quotient rule on shared powers."""
        return self.value_and_gradient(x)[1]

    def value_and_gradient(self, x) -> Tuple[float, np.ndarray]:
        """``(f(x), ∇f(x))`` from a single power-product evaluation."""
        _KERNEL_COUNTER["dispatches"] += 1
        scalar = self._scalar()
        if scalar is not None:
            _KERNEL_COUNTER["evaluations"] += 1
            out = scalar["full"](*[float(v) for v in x])
            denominator = out[1]
            if denominator == 0.0:
                raise ZeroDivisionError(
                    f"denominator vanishes at {dict(zip(self.params, x))}"
                )
            inverse = 1.0 / denominator
            value = out[0] * inverse
            offset = 2 + len(self.params)
            gradient = np.array(
                [
                    (out[2 + i] - value * out[offset + i]) * inverse
                    for i in range(len(self.params))
                ],
                dtype=np.float64,
            )
            return value, gradient
        _KERNEL_COUNTER["evaluations"] += 1
        powers = self._powers(self._vector(x))
        denominator = float(self.denominator_coefficients @ powers)
        if denominator == 0.0:
            raise ZeroDivisionError(
                f"denominator vanishes at {dict(zip(self.params, x))}"
            )
        numerator = float(self.numerator_coefficients @ powers)
        gradient = (
            (self.numerator_gradient @ powers) * denominator
            - numerator * (self.denominator_gradient @ powers)
        ) / (denominator * denominator)
        return numerator / denominator, gradient


def compile_polynomial(
    polynomial: Polynomial, params: Optional[Sequence[str]] = None
) -> CompiledPolynomial:
    """Lower a :class:`Polynomial` to a numpy kernel.

    ``params`` fixes the coordinate order (default: sorted variable
    names); extra names are allowed (their columns are simply unused by
    the polynomial's terms), missing ones raise ``ValueError``.
    """
    return CompiledPolynomial(polynomial, params)


def compile_rational(
    function: RationalFunction, params: Optional[Sequence[str]] = None
) -> CompiledRationalFunction:
    """Lower a :class:`RationalFunction` (and its partials) to a kernel."""
    return CompiledRationalFunction(function, params)


class StackedConstraintKernel(_Kernel):
    """``k`` inequality margins fused over one union term table.

    Each row is a triple ``(function, sign, bound)`` describing the
    margin ``sign · (function(x) − bound)`` of one
    :class:`~repro.checking.parametric.ParametricConstraint`.  All ``k``
    numerators, denominators and every one of the ``2·k·n`` partial
    derivatives become dense coefficient rows over a *single* exponent
    matrix, so one python call returns every constraint margin (and, on
    request, the full ``(k, n)`` jacobian) from one power-product — the
    NLP's SLSQP callbacks stop paying per-constraint dispatch.

    Row arithmetic matches the per-constraint
    :meth:`~repro.checking.parametric.ParametricConstraint.fast_margin`
    float path (value first, then ``sign · (value − bound)``), so fused
    and unfused solves see identical margins up to summation order.

    Scalar entry points (:meth:`margins`, :meth:`margins_and_jacobian`)
    raise ``ZeroDivisionError`` when any row's denominator vanishes;
    the batch entry points let IEEE semantics mark the offending
    entries ``inf``/``nan`` instead, so screening whole start pools
    survives isolated bad candidates.

    Examples
    --------
    >>> from repro.symbolic import Polynomial, RationalFunction
    >>> x = Polynomial.variable("x")
    >>> stack = compile_stack(
    ...     [
    ...         (RationalFunction(x, Polynomial.one()), 1.0, 0.25),
    ...         (RationalFunction(Polynomial.one(), x), -1.0, 3.0),
    ...     ]
    ... )
    >>> stack.margins([0.5])
    array([0.25, 1.  ])
    """

    def __init__(self, rows, params: Optional[Sequence[str]] = None):
        rows = [
            (function, float(sign), float(bound))
            for function, sign, bound in rows
        ]
        if not rows:
            raise ValueError("a stacked kernel needs at least one row")
        functions = [function for function, _, _ in rows]
        if params is None:
            names: set = set()
            for function in functions:
                names |= function.variables()
            params = tuple(sorted(names))
        else:
            params = tuple(params)
        for function in functions:
            missing = function.variables() - set(params)
            if missing:
                raise ValueError(
                    f"params {params} do not cover {sorted(missing)}"
                )
        pairs = [
            _float_safe_pair(function.numerator, function.denominator)
            for function in functions
        ]
        polynomials: List[Polynomial] = []
        for numerator, denominator in pairs:
            polynomials.append(numerator)
            polynomials.append(denominator)
        for numerator, denominator in pairs:
            for name in params:
                polynomials.append(numerator.derivative(name))
            for name in params:
                polynomials.append(denominator.derivative(name))
        exponents, coefficients = _term_table(polynomials, params)
        super().__init__(params, exponents)
        count = len(rows)
        arity = len(params)
        terms = len(exponents)
        self.signs = np.array([sign for _, sign, _ in rows], dtype=np.float64)
        self.bounds = np.array(
            [bound for _, _, bound in rows], dtype=np.float64
        )
        #: ``(k, T)`` numerator / denominator coefficient rows.
        self.numerator_coefficients = np.stack(coefficients[: 2 * count : 2])
        self.denominator_coefficients = np.stack(
            coefficients[1 : 2 * count : 2]
        )
        #: ``(k, n, T)``: partial-derivative coefficient rows per
        #: constraint and parameter, over the shared term table.
        partials = coefficients[2 * count :]
        numerator_gradient = np.zeros((count, arity, terms), dtype=np.float64)
        denominator_gradient = np.zeros(
            (count, arity, terms), dtype=np.float64
        )
        for i in range(count):
            block = partials[i * 2 * arity : (i + 1) * 2 * arity]
            for j in range(arity):
                numerator_gradient[i, j] = block[j]
                denominator_gradient[i, j] = block[arity + j]
        self.numerator_gradient = numerator_gradient
        self.denominator_gradient = denominator_gradient
        _KERNEL_COUNTER["compilations"] += 1

    @property
    def size(self) -> int:
        """Number of stacked constraint rows."""
        return len(self.bounds)

    def _build_scalar(self):
        if len(self.exponents) > _CODEGEN_TERM_LIMIT:
            return False
        arity = len(self.params)
        numerators = [
            _polynomial_source(self.exponents, row)
            for row in self.numerator_coefficients
        ]
        denominators = [
            _polynomial_source(self.exponents, row)
            for row in self.denominator_coefficients
        ]
        partials: List[str] = []
        for i in range(self.size):
            partials.extend(
                _polynomial_source(self.exponents, self.numerator_gradient[i, j])
                for j in range(arity)
            )
            partials.extend(
                _polynomial_source(
                    self.exponents, self.denominator_gradient[i, j]
                )
                for j in range(arity)
            )
        return {
            "value": _scalar_function(
                "stack_value", arity, numerators + denominators
            ),
            "full": _scalar_function(
                "stack_full", arity, numerators + denominators + partials
            ),
        }

    def _raise_vanishing(self, x) -> None:
        raise ZeroDivisionError(
            f"denominator vanishes at {dict(zip(self.params, x))}"
        )

    # ------------------------------------------------------------------
    # Scalar evaluation (one point, every constraint)
    # ------------------------------------------------------------------
    def margins(self, x) -> np.ndarray:
        """``(k,)`` margins ``sign_i · (f_i(x) − b_i)`` at one point."""
        _KERNEL_COUNTER["dispatches"] += 1
        _KERNEL_COUNTER["evaluations"] += self.size
        count = self.size
        scalar = self._scalar()
        if scalar is not None:
            out = scalar["value"](*[float(v) for v in x])
            values = np.empty(count, dtype=np.float64)
            for i in range(count):
                denominator = out[count + i]
                if denominator == 0.0:
                    self._raise_vanishing(x)
                values[i] = out[i] / denominator
        else:
            powers = self._powers(self._vector(x))
            denominators = self.denominator_coefficients @ powers
            if (denominators == 0.0).any():
                self._raise_vanishing(x)
            values = (self.numerator_coefficients @ powers) / denominators
        return self.signs * (values - self.bounds)

    def margins_and_jacobian(self, x) -> Tuple[np.ndarray, np.ndarray]:
        """``((k,), (k, n))`` margins and jacobian from one evaluation."""
        _KERNEL_COUNTER["dispatches"] += 1
        _KERNEL_COUNTER["evaluations"] += self.size
        count = self.size
        arity = len(self.params)
        scalar = self._scalar()
        if scalar is not None:
            out = scalar["full"](*[float(v) for v in x])
            values = np.empty(count, dtype=np.float64)
            jacobian = np.empty((count, arity), dtype=np.float64)
            for i in range(count):
                denominator = out[count + i]
                if denominator == 0.0:
                    self._raise_vanishing(x)
                inverse = 1.0 / denominator
                value = out[i] * inverse
                values[i] = value
                offset = 2 * count + i * 2 * arity
                for j in range(arity):
                    jacobian[i, j] = (
                        out[offset + j] - value * out[offset + arity + j]
                    ) * inverse
        else:
            powers = self._powers(self._vector(x))
            denominators = self.denominator_coefficients @ powers
            if (denominators == 0.0).any():
                self._raise_vanishing(x)
            numerators = self.numerator_coefficients @ powers
            values = numerators / denominators
            jacobian = (
                self.numerator_gradient @ powers
                - values[:, np.newaxis] * (self.denominator_gradient @ powers)
            ) / denominators[:, np.newaxis]
        margins = self.signs * (values - self.bounds)
        return margins, self.signs[:, np.newaxis] * jacobian

    # ------------------------------------------------------------------
    # Batch evaluation (many points, every constraint)
    # ------------------------------------------------------------------
    def margins_batch(self, X) -> np.ndarray:
        """``(m, k)`` margins at an ``(m, n)`` matrix of points.

        Rows with a vanishing denominator come back ``inf``/``nan``
        rather than raising (IEEE division), matching
        :meth:`CompiledRationalFunction.evaluate_batch`.
        """
        matrix = self._matrix(X)
        _KERNEL_COUNTER["dispatches"] += 1
        _KERNEL_COUNTER["evaluations"] += len(matrix) * self.size
        powers = self._powers_batch(matrix)
        with np.errstate(divide="ignore", invalid="ignore"):
            values = (powers @ self.numerator_coefficients.T) / (
                powers @ self.denominator_coefficients.T
            )
            return self.signs * (values - self.bounds)

    def margins_and_jacobian_batch(
        self, X
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``((m, k), (m, k, n))`` margins and jacobians for ``m`` points.

        The joint multi-start solve reads every SLSQP constraint value
        *and* derivative for every candidate start from this single
        call.  Non-finite rows (vanishing denominators) follow IEEE
        semantics as in :meth:`margins_batch`.
        """
        matrix = self._matrix(X)
        _KERNEL_COUNTER["dispatches"] += 1
        _KERNEL_COUNTER["evaluations"] += len(matrix) * self.size
        powers = self._powers_batch(matrix)
        with np.errstate(divide="ignore", invalid="ignore"):
            numerators = powers @ self.numerator_coefficients.T
            denominators = powers @ self.denominator_coefficients.T
            values = numerators / denominators
            numerator_grad = np.tensordot(
                powers, self.numerator_gradient, axes=([1], [2])
            )
            denominator_grad = np.tensordot(
                powers, self.denominator_gradient, axes=([1], [2])
            )
            jacobian = (
                numerator_grad
                - values[:, :, np.newaxis] * denominator_grad
            ) / denominators[:, :, np.newaxis]
            margins = self.signs * (values - self.bounds)
            return margins, self.signs[np.newaxis, :, np.newaxis] * jacobian


def compile_stack(
    rows, params: Optional[Sequence[str]] = None
) -> StackedConstraintKernel:
    """Fuse ``(function, sign, bound)`` rows into one stacked kernel."""
    return StackedConstraintKernel(rows, params)
