"""Multivariate polynomials with exact rational coefficients.

The representation is sparse: a mapping from *monomials* to nonzero
:class:`fractions.Fraction` coefficients.  A monomial is a tuple of
``(variable_name, exponent)`` pairs, sorted by variable name, with all
exponents positive; the empty tuple is the constant monomial.

Polynomials are immutable and hashable, so they can be used as dictionary
keys (the parametric model checker keys transition matrices by rational
functions built from these).
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Dict, Iterable, Mapping, Tuple, Union

Monomial = Tuple[Tuple[str, int], ...]
Scalar = Union[int, float, Fraction]

# Polynomials larger than this (in monomial count) are never fed to the
# GCD routine; simplification silently degrades instead of hanging.
_GCD_SIZE_LIMIT = 250

# Bounded memo tables for the elimination hot path.  Monomials and
# polynomials are immutable and hashable, and state elimination combines
# the same rational functions over and over, so identical products,
# divisions and GCDs recur constantly.  Each table is cleared wholesale
# once it reaches the cap — correctness never depends on a hit, so a
# flush only costs warm-up.
_MEMO_LIMIT = 1 << 15
_MONO_INTERN: Dict[Monomial, Monomial] = {}
_MONO_MUL_CACHE: Dict[Tuple[Monomial, Monomial], Monomial] = {}
_DIV_CACHE: Dict[Tuple["Polynomial", "Polynomial"], "Polynomial"] = {}
_GCD_CACHE: Dict[Tuple["Polynomial", "Polynomial"], "Polynomial"] = {}


def _intern_monomial(mono: Monomial) -> Monomial:
    """One shared tuple per distinct monomial (dict keys then compare
    by identity on the fast path)."""
    if not mono:
        return mono
    cached = _MONO_INTERN.get(mono)
    if cached is not None:
        return cached
    if len(_MONO_INTERN) >= _MEMO_LIMIT:
        _MONO_INTERN.clear()
    _MONO_INTERN[mono] = mono
    return mono


def _as_fraction(value: Scalar) -> Fraction:
    """Convert supported scalar types to an exact Fraction."""
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        return Fraction(value).limit_denominator(10**12)
    raise TypeError(f"cannot interpret {value!r} as a polynomial coefficient")


def _mono_mul(a: Monomial, b: Monomial) -> Monomial:
    """Multiply two monomials (merge exponent vectors; memoised)."""
    if not a:
        return b
    if not b:
        return a
    key = (a, b)
    cached = _MONO_MUL_CACHE.get(key)
    if cached is not None:
        return cached
    exps: Dict[str, int] = dict(a)
    for var, exp in b:
        exps[var] = exps.get(var, 0) + exp
    product = _intern_monomial(tuple(sorted(exps.items())))
    if len(_MONO_MUL_CACHE) >= _MEMO_LIMIT:
        _MONO_MUL_CACHE.clear()
    _MONO_MUL_CACHE[key] = product
    return product


def _mono_divides(a: Monomial, b: Monomial) -> bool:
    """Return True if monomial ``a`` divides monomial ``b``."""
    b_exps = dict(b)
    return all(b_exps.get(var, 0) >= exp for var, exp in a)


def _mono_div(a: Monomial, b: Monomial) -> Monomial:
    """Divide monomial ``a`` by ``b`` (``b`` must divide ``a``)."""
    exps = dict(a)
    for var, exp in b:
        remaining = exps.get(var, 0) - exp
        if remaining < 0:
            raise ArithmeticError(f"monomial {b} does not divide {a}")
        if remaining == 0:
            exps.pop(var, None)
        else:
            exps[var] = remaining
    return tuple(sorted(exps.items()))


class Polynomial:
    """Immutable sparse multivariate polynomial over the rationals.

    Construct via :meth:`constant`, :meth:`variable`, or arithmetic on
    existing polynomials.  Supports ``+ - * **``, exact equality, hashing,
    numeric evaluation and partial substitution.

    Examples
    --------
    >>> p = Polynomial.variable("x")
    >>> q = (p + 1) * (p - 1)
    >>> q.evaluate({"x": 3})
    Fraction(8, 1)
    """

    __slots__ = ("_terms", "_hash", "_vars", "_float_terms")

    def __init__(self, terms: Mapping[Monomial, Fraction] = ()):
        cleaned = {
            _intern_monomial(m): c for m, c in dict(terms).items() if c != 0
        }
        self._terms: Dict[Monomial, Fraction] = cleaned
        self._hash = None
        self._vars = None
        self._float_terms = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def constant(value: Scalar) -> "Polynomial":
        """The constant polynomial ``value``."""
        frac = _as_fraction(value)
        return Polynomial({(): frac}) if frac != 0 else Polynomial()

    @staticmethod
    def variable(name: str) -> "Polynomial":
        """The polynomial consisting of the single variable ``name``."""
        if not name:
            raise ValueError("variable name must be non-empty")
        return Polynomial({((name, 1),): Fraction(1)})

    @staticmethod
    def zero() -> "Polynomial":
        """The zero polynomial."""
        return Polynomial()

    @staticmethod
    def one() -> "Polynomial":
        """The unit polynomial."""
        return Polynomial.constant(1)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def terms(self) -> Dict[Monomial, Fraction]:
        """A copy of the monomial-to-coefficient mapping."""
        return dict(self._terms)

    def is_zero(self) -> bool:
        """True if this is the zero polynomial."""
        return not self._terms

    def is_constant(self) -> bool:
        """True if this polynomial has no variables."""
        return not self._terms or set(self._terms) == {()}

    def constant_value(self) -> Fraction:
        """The value of a constant polynomial (raises otherwise)."""
        if not self.is_constant():
            raise ValueError(f"{self} is not constant")
        return self._terms.get((), Fraction(0))

    def variables(self) -> frozenset:
        """All variable names occurring with nonzero coefficient."""
        if self._vars is None:
            names = set()
            for mono in self._terms:
                for var, _ in mono:
                    names.add(var)
            self._vars = frozenset(names)
        return self._vars

    def degree(self, var: str) -> int:
        """The degree in ``var`` (0 for the zero polynomial)."""
        best = 0
        for mono in self._terms:
            for name, exp in mono:
                if name == var and exp > best:
                    best = exp
        return best

    def total_degree(self) -> int:
        """The maximum total degree over all monomials."""
        if not self._terms:
            return 0
        return max(sum(exp for _, exp in mono) for mono in self._terms)

    def __len__(self) -> int:
        return len(self._terms)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: Union["Polynomial", Scalar]) -> "Polynomial":
        other = _coerce(other)
        if other is NotImplemented:
            return NotImplemented
        terms = dict(self._terms)
        for mono, coeff in other._terms.items():
            terms[mono] = terms.get(mono, Fraction(0)) + coeff
        return Polynomial(terms)

    __radd__ = __add__

    def __neg__(self) -> "Polynomial":
        return Polynomial({m: -c for m, c in self._terms.items()})

    def __sub__(self, other: Union["Polynomial", Scalar]) -> "Polynomial":
        other = _coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return self + (-other)

    def __rsub__(self, other: Scalar) -> "Polynomial":
        return _coerce(other) - self

    def __mul__(self, other: Union["Polynomial", Scalar]) -> "Polynomial":
        other = _coerce(other)
        if other is NotImplemented:
            return NotImplemented
        if not self._terms or not other._terms:
            return Polynomial()
        terms: Dict[Monomial, Fraction] = {}
        for mono_a, coeff_a in self._terms.items():
            for mono_b, coeff_b in other._terms.items():
                mono = _mono_mul(mono_a, mono_b)
                terms[mono] = terms.get(mono, Fraction(0)) + coeff_a * coeff_b
        return Polynomial(terms)

    __rmul__ = __mul__

    def __pow__(self, exponent: int) -> "Polynomial":
        if not isinstance(exponent, int) or exponent < 0:
            raise ValueError("polynomial exponent must be a non-negative int")
        result = Polynomial.one()
        base = self
        n = exponent
        while n:
            if n & 1:
                result = result * base
            base = base * base
            n >>= 1
        return result

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, float, Fraction)):
            other = Polynomial.constant(other)
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self._terms == other._terms

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._terms.items()))
        return self._hash

    # ------------------------------------------------------------------
    # Evaluation and substitution
    # ------------------------------------------------------------------
    def evaluate(self, assignment: Mapping[str, Scalar]):
        """Evaluate with every variable bound.

        Returns a :class:`Fraction` when all inputs are exact, else a
        float.  Raises ``KeyError`` on unbound variables.

        The inexact path never touches ``Fraction`` arithmetic: the
        coefficients are pre-converted to floats once per polynomial
        (cached) and accumulation is pure float — this is the hot path
        of every numeric caller that has not compiled a kernel
        (:mod:`repro.symbolic.compile`).
        """
        exact = all(
            isinstance(assignment[var], (int, Fraction)) for var in self.variables()
        )
        if exact:
            total = Fraction(0)
            for mono, coeff in self._terms.items():
                value = coeff
                for var, exp in mono:
                    value = value * assignment[var] ** exp
                total += value
            return total
        if self._float_terms is None:
            self._float_terms = [
                (float(coeff), mono) for mono, coeff in self._terms.items()
            ]
        total = 0.0
        for value, mono in self._float_terms:
            for var, exp in mono:
                value *= float(assignment[var]) ** exp
            total += value
        return total

    def substitute(self, assignment: Mapping[str, Union[Scalar, "Polynomial"]]) -> "Polynomial":
        """Partially substitute variables; unbound variables stay symbolic."""
        result = Polynomial()
        for mono, coeff in self._terms.items():
            term = Polynomial.constant(coeff)
            for var, exp in mono:
                if var in assignment:
                    replacement = assignment[var]
                    if not isinstance(replacement, Polynomial):
                        replacement = Polynomial.constant(replacement)
                    term = term * replacement**exp
                else:
                    term = term * Polynomial.variable(var) ** exp
            result = result + term
        return result

    def derivative(self, var: str) -> "Polynomial":
        """Partial derivative with respect to ``var``."""
        terms: Dict[Monomial, Fraction] = {}
        for mono, coeff in self._terms.items():
            exps = dict(mono)
            exp = exps.get(var, 0)
            if exp == 0:
                continue
            if exp == 1:
                exps.pop(var)
            else:
                exps[var] = exp - 1
            new_mono = tuple(sorted(exps.items()))
            terms[new_mono] = terms.get(new_mono, Fraction(0)) + coeff * exp
        return Polynomial(terms)

    # ------------------------------------------------------------------
    # Ring utilities (for GCD and exact division)
    # ------------------------------------------------------------------
    def content(self) -> Fraction:
        """GCD of the coefficients (positive), or 0 for the zero poly."""
        if not self._terms:
            return Fraction(0)
        numer = 0
        denom = 1
        for coeff in self._terms.values():
            numer = math.gcd(numer, abs(coeff.numerator))
            denom = denom * coeff.denominator // math.gcd(denom, coeff.denominator)
        return Fraction(numer, denom)

    def scaled(self, factor: Scalar) -> "Polynomial":
        """This polynomial times a scalar."""
        frac = _as_fraction(factor)
        if frac == 0:
            return Polynomial()
        return Polynomial({m: c * frac for m, c in self._terms.items()})

    def leading_term(self) -> Tuple[Monomial, Fraction]:
        """The lexicographically greatest monomial and its coefficient."""
        if not self._terms:
            raise ValueError("zero polynomial has no leading term")
        varlist = sorted(self.variables())
        mono = max(self._terms, key=lambda m: _exponent_vector(m, varlist))
        return mono, self._terms[mono]

    def divmod(self, divisor: "Polynomial") -> Tuple["Polynomial", "Polynomial"]:
        """Multivariate division with remainder (lex monomial order)."""
        if divisor.is_zero():
            raise ZeroDivisionError("polynomial division by zero")
        varlist = sorted(self.variables() | divisor.variables())

        def order(mono: Monomial):
            return _exponent_vector(mono, varlist)

        quotient = Polynomial()
        remainder = Polynomial()
        current = self
        lead_mono = max(divisor._terms, key=order)
        lead_coeff = divisor._terms[lead_mono]
        while not current.is_zero():
            cur_mono = max(current._terms, key=order)
            cur_coeff = current._terms[cur_mono]
            if _mono_divides(lead_mono, cur_mono):
                factor = Polynomial(
                    {_mono_div(cur_mono, lead_mono): cur_coeff / lead_coeff}
                )
                quotient = quotient + factor
                current = current - factor * divisor
            else:
                lead = Polynomial({cur_mono: cur_coeff})
                remainder = remainder + lead
                current = current - lead
        return quotient, remainder

    def exact_div(self, divisor: "Polynomial") -> "Polynomial":
        """Exact division; raises ``ArithmeticError`` on nonzero remainder."""
        if divisor.is_zero():
            raise ZeroDivisionError("polynomial division by zero")
        if divisor.is_constant():
            # Dividing by a nonzero constant is always exact.
            value = divisor.constant_value()
            if value == 1:
                return self
            return self.scaled(Fraction(1) / value)
        key = (self, divisor)
        cached = _DIV_CACHE.get(key)
        if cached is not None:
            return cached
        quotient, remainder = self.divmod(divisor)
        if not remainder.is_zero():
            raise ArithmeticError(f"{divisor} does not divide {self}")
        if len(_DIV_CACHE) >= _MEMO_LIMIT:
            _DIV_CACHE.clear()
        _DIV_CACHE[key] = quotient
        return quotient

    # ------------------------------------------------------------------
    # Formatting
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return f"Polynomial({self})"

    def __str__(self) -> str:
        if not self._terms:
            return "0"
        varlist = sorted(self.variables())
        parts = []
        for mono in sorted(
            self._terms,
            key=lambda m: _exponent_vector(m, varlist),
            reverse=True,
        ):
            coeff = self._terms[mono]
            factors = [
                var if exp == 1 else f"{var}^{exp}" for var, exp in mono
            ]
            if not factors:
                parts.append(str(coeff))
            elif coeff == 1:
                parts.append("*".join(factors))
            elif coeff == -1:
                parts.append("-" + "*".join(factors))
            else:
                parts.append(f"{coeff}*" + "*".join(factors))
        text = " + ".join(parts)
        return text.replace("+ -", "- ")


def _coerce(value: Union[Polynomial, Scalar]) -> Polynomial:
    if isinstance(value, Polynomial):
        return value
    if isinstance(value, (int, float, Fraction)):
        return Polynomial.constant(value)
    return NotImplemented


def _exponent_vector(mono: Monomial, varlist) -> Tuple[int, ...]:
    """The exponent vector of a monomial over an explicit variable list.

    Comparing these tuples realises lexicographic monomial order — a
    genuine multiplicative well-order, which term-by-term polynomial
    division requires.  (Comparing the sparse ``(var, exp)`` pairs
    directly is *not* an order: it would rank ``q`` above ``p·q``.)
    """
    exps = dict(mono)
    return tuple(exps.get(var, 0) for var in varlist)


# ----------------------------------------------------------------------
# Fraction-free linear algebra
# ----------------------------------------------------------------------
def bareiss_determinant(matrix) -> Polynomial:
    """Determinant of a square matrix of polynomials (Bareiss algorithm).

    Fraction-free Gaussian elimination: every intermediate entry is a
    minor of the original matrix, so with degree-``d`` entries the
    intermediates never exceed degree ``n·d`` — no rational-function
    blow-up.  Exact division by the previous pivot is guaranteed to
    succeed by the Sylvester identity.

    Implementation detail: each row is scaled by the LCM of its
    coefficient denominators up front, so the elimination runs entirely
    over integer-coefficient dictionaries (Python ``int`` arithmetic is
    an order of magnitude faster than ``Fraction``); the accumulated
    scale is divided back out of the result.

    This is the engine behind the parametric model checker's
    Cramer-rule solver.
    """
    rows = [[_coerce(entry) for entry in row] for row in matrix]
    n = len(rows)
    if any(len(row) != n for row in rows):
        raise ValueError("determinant needs a square matrix")
    if n == 0:
        return Polynomial.one()
    # Clear denominators row-wise; remember the total scale.
    scale = Fraction(1)
    int_rows: list = []
    for row in rows:
        lcm = 1
        for entry in row:
            for coeff in entry._terms.values():
                lcm = lcm * coeff.denominator // math.gcd(lcm, coeff.denominator)
        scale *= lcm
        int_rows.append(
            [
                {mono: int(coeff * lcm) for mono, coeff in entry._terms.items()}
                for entry in row
            ]
        )
    sign = 1
    previous_pivot: Dict[Monomial, int] = {(): 1}
    for k in range(n - 1):
        if not int_rows[k][k]:
            pivot_row = next(
                (i for i in range(k + 1, n) if int_rows[i][k]), None
            )
            if pivot_row is None:
                return Polynomial.zero()
            int_rows[k], int_rows[pivot_row] = int_rows[pivot_row], int_rows[k]
            sign = -sign
        pivot = int_rows[k][k]
        for i in range(k + 1, n):
            left = int_rows[i][k]
            if not left:
                # Row already has a zero in the pivot column; still must
                # divide through to keep the Sylvester invariant.
                for j in range(k + 1, n):
                    product = _int_mul(pivot, int_rows[i][j])
                    int_rows[i][j] = _int_exact_div(product, previous_pivot)
                continue
            for j in range(k + 1, n):
                numerator = _int_sub(
                    _int_mul(pivot, int_rows[i][j]),
                    _int_mul(left, int_rows[k][j]),
                )
                int_rows[i][j] = _int_exact_div(numerator, previous_pivot)
            int_rows[i][k] = {}
        previous_pivot = pivot
    result = int_rows[n - 1][n - 1]
    terms = {
        mono: Fraction(coeff) / scale for mono, coeff in result.items() if coeff
    }
    poly = Polynomial(terms)
    return -poly if sign < 0 else poly


def _int_mul(a: Dict[Monomial, int], b: Dict[Monomial, int]) -> Dict[Monomial, int]:
    """Multiply integer-coefficient term dictionaries."""
    if not a or not b:
        return {}
    result: Dict[Monomial, int] = {}
    for mono_a, coeff_a in a.items():
        for mono_b, coeff_b in b.items():
            mono = _mono_mul(mono_a, mono_b)
            value = result.get(mono, 0) + coeff_a * coeff_b
            if value:
                result[mono] = value
            else:
                result.pop(mono, None)
    return result


def _int_sub(a: Dict[Monomial, int], b: Dict[Monomial, int]) -> Dict[Monomial, int]:
    """Subtract integer-coefficient term dictionaries."""
    result = dict(a)
    for mono, coeff in b.items():
        value = result.get(mono, 0) - coeff
        if value:
            result[mono] = value
        else:
            result.pop(mono, None)
    return result


def _int_exact_div(
    a: Dict[Monomial, int], b: Dict[Monomial, int]
) -> Dict[Monomial, int]:
    """Exact division of integer term dicts (raises if not exact)."""
    if not b:
        raise ZeroDivisionError("polynomial division by zero")
    if b == {(): 1}:
        return dict(a)
    varset = set()
    for mono in a:
        for var, _ in mono:
            varset.add(var)
    for mono in b:
        for var, _ in mono:
            varset.add(var)
    varlist = sorted(varset)

    def order(mono: Monomial):
        return _exponent_vector(mono, varlist)

    lead_b = max(b, key=order)
    lead_b_coeff = b[lead_b]
    current = dict(a)
    quotient: Dict[Monomial, int] = {}
    while current:
        lead = max(current, key=order)
        coeff = current[lead]
        if not _mono_divides(lead_b, lead) or coeff % lead_b_coeff:
            raise ArithmeticError("inexact polynomial division in Bareiss step")
        factor_mono = _mono_div(lead, lead_b)
        factor_coeff = coeff // lead_b_coeff
        quotient[factor_mono] = factor_coeff
        for mono, b_coeff in b.items():
            target = _mono_mul(factor_mono, mono)
            value = current.get(target, 0) - factor_coeff * b_coeff
            if value:
                current[target] = value
            else:
                current.pop(target, None)
    return quotient


# ----------------------------------------------------------------------
# Multivariate GCD (primitive Euclidean algorithm)
# ----------------------------------------------------------------------
def poly_gcd(a: Polynomial, b: Polynomial) -> Polynomial:
    """Greatest common divisor of two polynomials.

    Uses the primitive polynomial remainder sequence, recursing on the
    number of variables.  Intermediate expression swell is bounded by a
    size cap and an overall work budget: if either is exceeded the
    routine gives up and returns 1 (a valid, if trivial, common
    divisor) — callers only use the GCD to *reduce* rational functions,
    so a trivial answer is safe.
    """
    if a.is_zero():
        return _make_primitive_positive(b)
    if b.is_zero():
        return _make_primitive_positive(a)
    if len(a) > _GCD_SIZE_LIMIT or len(b) > _GCD_SIZE_LIMIT:
        return Polynomial.one()
    key = (a, b)
    cached = _GCD_CACHE.get(key)
    if cached is not None:
        return cached
    budget = _GcdBudget(units=4_000)
    try:
        result = _make_primitive_positive(_gcd_recursive(a, b, 0, budget))
    except _GcdTooLarge:
        result = Polynomial.one()
    if len(_GCD_CACHE) >= _MEMO_LIMIT:
        _GCD_CACHE.clear()
    # The normalised GCD is symmetric in its arguments.
    _GCD_CACHE[key] = result
    _GCD_CACHE[(b, a)] = result
    return result


class _GcdBudget:
    """Work budget shared across one poly_gcd call tree."""

    __slots__ = ("units",)

    def __init__(self, units: int):
        self.units = units

    def spend(self, amount: int) -> None:
        self.units -= amount
        if self.units < 0:
            raise _GcdTooLarge


class _GcdTooLarge(Exception):
    """Internal: raised when the PRS exceeds the size cap."""


def _make_primitive_positive(poly: Polynomial) -> Polynomial:
    """Normalise so content is 1 and the leading coefficient is positive."""
    if poly.is_zero():
        return poly
    content = poly.content()
    poly = poly.scaled(1 / content)
    _, lead = poly.leading_term()
    if lead < 0:
        poly = -poly
    return poly


def _gcd_recursive(
    a: Polynomial, b: Polynomial, depth: int, budget: "_GcdBudget"
) -> Polynomial:
    if depth > 16:
        raise _GcdTooLarge
    budget.spend(len(a) + len(b))
    variables = sorted(a.variables() | b.variables())
    if not variables:
        numer = math.gcd(
            abs(a.constant_value().numerator), abs(b.constant_value().numerator)
        )
        return Polynomial.constant(Fraction(numer if numer else 1))
    var = variables[0]
    coeffs_a = _univariate_view(a, var)
    coeffs_b = _univariate_view(b, var)
    content_a = _poly_list_gcd(list(coeffs_a.values()), depth, budget)
    content_b = _poly_list_gcd(list(coeffs_b.values()), depth, budget)
    content = _gcd_recursive(content_a, content_b, depth + 1, budget)
    prim_a = _scale_univariate(coeffs_a, content_a)
    prim_b = _scale_univariate(coeffs_b, content_b)
    # Primitive PRS in `var` over the polynomial ring in the remaining vars.
    u, v = (prim_a, prim_b) if _uni_deg(prim_a) >= _uni_deg(prim_b) else (prim_b, prim_a)
    while any(not c.is_zero() for c in v.values()):
        remainder = _pseudo_remainder(u, v, var)
        work = sum(len(c) for c in remainder.values())
        if work > _GCD_SIZE_LIMIT * 4:
            raise _GcdTooLarge
        budget.spend(work + 1)
        u, v = v, _primitive_univariate(remainder, depth, budget)
    result = _from_univariate(u, var)
    return content * _make_primitive_positive(result)


def _univariate_view(poly: Polynomial, var: str) -> Dict[int, Polynomial]:
    """Rewrite as a map degree-in-var -> coefficient polynomial."""
    coeffs: Dict[int, Dict[Monomial, Fraction]] = {}
    for mono, coeff in poly.terms.items():
        exps = dict(mono)
        deg = exps.pop(var, 0)
        rest = tuple(sorted(exps.items()))
        bucket = coeffs.setdefault(deg, {})
        bucket[rest] = bucket.get(rest, Fraction(0)) + coeff
    return {deg: Polynomial(terms) for deg, terms in coeffs.items()}


def _from_univariate(coeffs: Mapping[int, Polynomial], var: str) -> Polynomial:
    result = Polynomial()
    x = Polynomial.variable(var)
    for deg, coeff in coeffs.items():
        result = result + coeff * x**deg
    return result


def _uni_deg(coeffs: Mapping[int, Polynomial]) -> int:
    degs = [d for d, c in coeffs.items() if not c.is_zero()]
    return max(degs) if degs else -1


def _poly_list_gcd(
    polys: Iterable[Polynomial], depth: int, budget: "_GcdBudget"
) -> Polynomial:
    result = Polynomial.zero()
    for poly in polys:
        result = (
            _gcd_recursive(result, poly, depth + 1, budget)
            if not result.is_zero()
            else poly
        )
        if result == Polynomial.one():
            break
    return result if not result.is_zero() else Polynomial.one()


def _scale_univariate(
    coeffs: Mapping[int, Polynomial], content: Polynomial
) -> Dict[int, Polynomial]:
    if content.is_zero() or content == Polynomial.one():
        return dict(coeffs)
    return {deg: coeff.exact_div(content) for deg, coeff in coeffs.items()}


def _primitive_univariate(
    coeffs: Dict[int, Polynomial], depth: int, budget: "_GcdBudget"
) -> Dict[int, Polynomial]:
    nonzero = [c for c in coeffs.values() if not c.is_zero()]
    if not nonzero:
        return {}
    content = _poly_list_gcd(nonzero, depth, budget)
    return _scale_univariate(
        {d: c for d, c in coeffs.items() if not c.is_zero()}, content
    )


def _pseudo_remainder(
    u: Dict[int, Polynomial], v: Dict[int, Polynomial], var: str
) -> Dict[int, Polynomial]:
    """Pseudo-remainder of u by v, both in univariate view over `var`."""
    deg_v = _uni_deg(v)
    lead_v = v[deg_v]
    current = {d: c for d, c in u.items() if not c.is_zero()}
    while _uni_deg(current) >= deg_v and current:
        deg_u = _uni_deg(current)
        lead_u = current[deg_u]
        shift = deg_u - deg_v
        # current <- lead_v * current - lead_u * x^shift * v
        updated: Dict[int, Polynomial] = {}
        for deg, coeff in current.items():
            updated[deg] = coeff * lead_v
        for deg, coeff in v.items():
            target = deg + shift
            updated[target] = updated.get(target, Polynomial.zero()) - lead_u * coeff
        current = {d: c for d, c in updated.items() if not c.is_zero()}
    return current
