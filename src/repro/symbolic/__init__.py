"""Exact symbolic arithmetic for parametric model checking.

This subpackage provides multivariate polynomials and rational functions
with exact :class:`fractions.Fraction` coefficients.  They are the value
domain of the parametric model checker (:mod:`repro.checking.parametric`):
state elimination on a parametric Markov chain produces a rational
function of the repair parameters, which the repair algorithms in
:mod:`repro.core` hand to the nonlinear optimizer.

Public API
----------
``Polynomial``
    Immutable multivariate polynomial over the rationals.
``RationalFunction``
    Quotient of two polynomials, normalised and (best-effort) reduced.
``poly_gcd``
    Multivariate polynomial greatest common divisor (primitive PRS).
``compile_polynomial`` / ``compile_rational``
    Symbolic→numeric lowering to flat numpy kernels with analytic
    gradients and batch evaluation (:mod:`repro.symbolic.compile`) —
    the fast path of the repair NLP.
"""

from repro.symbolic.polynomial import Polynomial, bareiss_determinant, poly_gcd
from repro.symbolic.rational import RationalFunction
from repro.symbolic.compile import (
    CompiledPolynomial,
    CompiledRationalFunction,
    StackedConstraintKernel,
    compile_polynomial,
    compile_rational,
    compile_stack,
    kernel_stats,
)

__all__ = [
    "Polynomial",
    "RationalFunction",
    "poly_gcd",
    "bareiss_determinant",
    "CompiledPolynomial",
    "CompiledRationalFunction",
    "StackedConstraintKernel",
    "compile_polynomial",
    "compile_rational",
    "compile_stack",
    "kernel_stats",
]
