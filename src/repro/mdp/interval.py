"""Interval Markov chains: convex transition uncertainty.

The related work the paper builds on (Puggelli et al., "Polynomial-Time
Verification of PCTL Properties of MDPs with Convex Uncertainties";
Sen et al.'s uncertain Markov chains) verifies models whose transition
probabilities are only known up to intervals.  Here this doubles as a
*robustness certificate for repairs*: by Proposition 1 a repair with
bound ε keeps every transition within ±ε of the repaired value, so
checking the interval chain ``[P' − ε', P' + ε']`` proves the repaired
model keeps satisfying the property under any further ε'-perturbation.

Semantics: at every step, nature picks any distribution inside the
row's intervals (the standard non-convex-adversary-free "interval MDP"
setting).  Robust value iteration computes min/max reachability by
solving, per state, the inner linear program over the interval simplex
— which has the classic greedy closed form (sort successors by value,
saturate bounds).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Mapping, Optional, Set, Tuple

import numpy as np

from repro.mdp.model import DTMC, ModelValidationError

State = Hashable

_VI_TOLERANCE = 1e-10
_VI_MAX_ITERATIONS = 100_000
#: Any finite value crossing this threshold marks the iteration as
#: divergent — expected rewards of real repair models live far below it.
_VI_DIVERGENCE_LIMIT = 1e15


class VIReport:
    """Accounting for one robust value-iteration run.

    ``converged`` is True iff the sweep residual dropped below the
    tolerance before the iteration cap; ``diverged`` flags a run whose
    finite values blew past :data:`_VI_DIVERGENCE_LIMIT` (or went
    non-finite), which a capped-but-convergent run never does.
    """

    def __init__(
        self,
        iterations: int,
        converged: bool,
        residual: float,
        diverged: bool = False,
    ):
        self.iterations = int(iterations)
        self.converged = bool(converged)
        self.residual = float(residual)
        self.diverged = bool(diverged)

    def to_dict(self) -> Dict[str, object]:
        return {
            "iterations": self.iterations,
            "converged": self.converged,
            "residual": self.residual,
            "diverged": self.diverged,
        }

    def __repr__(self) -> str:
        return (
            f"VIReport(iterations={self.iterations}, "
            f"converged={self.converged}, diverged={self.diverged})"
        )


def _epsilon_ball_row(
    row: Mapping[State, float], epsilon: float
) -> Dict[State, Tuple[float, float]]:
    """±ε interval row with bounds clamped into [0, 1].

    Structural zeros stay at exactly ``[0, 0]`` so the ε-ball preserves
    the transition graph, and a probability stored slightly above 1
    (within the DTMC's validation tolerance) cannot produce an inverted
    ``lower > upper`` interval.
    """
    ball: Dict[State, Tuple[float, float]] = {}
    for target, p in row.items():
        if p <= 0.0:
            ball[target] = (0.0, 0.0)
            continue
        lower = min(1.0, max(0.0, p - epsilon))
        upper = min(1.0, max(lower, p + epsilon))
        ball[target] = (lower, upper)
    return ball


class IntervalDTMC:
    """A chain whose transition probabilities are intervals.

    Parameters
    ----------
    states:
        State identifiers.
    intervals:
        ``{source: {target: (lower, upper)}}``.  Row feasibility requires
        ``Σ lower ≤ 1 ≤ Σ upper`` with each ``0 ≤ lower ≤ upper ≤ 1``.
    initial_state / labels / state_rewards:
        As for :class:`~repro.mdp.DTMC`.

    Examples
    --------
    >>> imc = IntervalDTMC(
    ...     states=["a", "b"],
    ...     intervals={
    ...         "a": {"b": (0.4, 0.6), "a": (0.4, 0.6)},
    ...         "b": {"b": (1.0, 1.0)},
    ...     },
    ...     initial_state="a",
    ...     labels={"b": {"goal"}},
    ... )
    >>> round(imc.reachability_probability({"b"}, maximise=False), 6)
    1.0
    """

    def __init__(
        self,
        states,
        intervals: Mapping[State, Mapping[State, Tuple[float, float]]],
        initial_state: State,
        labels: Optional[Mapping[State, Iterable[str]]] = None,
        state_rewards: Optional[Mapping[State, float]] = None,
    ):
        self.states = list(states)
        if initial_state not in set(self.states):
            raise ModelValidationError(f"unknown initial state {initial_state!r}")
        self.initial_state = initial_state
        self.intervals: Dict[State, Dict[State, Tuple[float, float]]] = {}
        for state in self.states:
            row = intervals.get(state)
            if not row:
                row = {state: (1.0, 1.0)}
            lower_sum = 0.0
            upper_sum = 0.0
            cleaned: Dict[State, Tuple[float, float]] = {}
            for target, (lower, upper) in row.items():
                if target not in set(self.states):
                    raise ModelValidationError(f"unknown target {target!r}")
                if not 0.0 <= lower <= upper <= 1.0 + 1e-12:
                    raise ModelValidationError(
                        f"bad interval [{lower}, {upper}] on "
                        f"{state!r} -> {target!r}"
                    )
                cleaned[target] = (float(lower), float(min(upper, 1.0)))
                lower_sum += lower
                upper_sum += upper
            if lower_sum > 1.0 + 1e-9 or upper_sum < 1.0 - 1e-9:
                raise ModelValidationError(
                    f"row {state!r} infeasible: Σlower={lower_sum}, "
                    f"Σupper={upper_sum}"
                )
            self.intervals[state] = cleaned
        self.labels = {
            s: frozenset((labels or {}).get(s, frozenset())) for s in self.states
        }
        self.state_rewards = {
            s: float((state_rewards or {}).get(s, 0.0)) for s in self.states
        }

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def from_dtmc(chain: DTMC, epsilon: float) -> "IntervalDTMC":
        """Blow a concrete chain up into ±ε intervals (clamped to [0,1]).

        Structural zeros stay zero — matching Equation 3's
        structure-preservation and Proposition 1's perturbation model.
        """
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        intervals = {
            s: _epsilon_ball_row(row, epsilon)
            for s, row in chain.transitions.items()
        }
        return IntervalDTMC(
            states=chain.states,
            intervals=intervals,
            initial_state=chain.initial_state,
            labels=chain.labels,
            state_rewards=chain.state_rewards,
        )

    def contains(self, chain: DTMC, tolerance: float = 1e-9) -> bool:
        """Whether a concrete chain's transitions lie inside the intervals."""
        if chain.states != self.states:
            return False
        for state in self.states:
            row = self.intervals[state]
            for target in set(chain.transitions[state]) | set(row):
                probability = chain.probability(state, target)
                lower, upper = row.get(target, (0.0, 0.0))
                if probability < lower - tolerance or probability > upper + tolerance:
                    return False
        return True

    def states_with_atom(self, atom: str):
        """All states labelled with ``atom``."""
        return frozenset(s for s, props in self.labels.items() if atom in props)

    # ------------------------------------------------------------------
    # Robust value iteration
    # ------------------------------------------------------------------
    @staticmethod
    def _inner_optimum(
        row: Dict[State, Tuple[float, float]],
        values: Mapping[State, float],
        maximise: bool,
    ) -> float:
        """Nature's best/worst expectation over the interval simplex.

        Greedy closed form: start every target at its lower bound, then
        distribute the remaining mass toward high-value (maximise) or
        low-value (minimise) targets, saturating upper bounds in order.
        """
        targets = list(row)
        base = sum(row[t][0] for t in targets)
        remaining = 1.0 - base
        expectation = sum(row[t][0] * values[t] for t in targets)
        order = sorted(targets, key=lambda t: values[t], reverse=maximise)
        for target in order:
            if remaining <= 0:
                break
            slack = row[target][1] - row[target][0]
            take = min(slack, remaining)
            expectation += take * values[target]
            remaining -= take
        return expectation

    @staticmethod
    def _inner_distribution(
        row: Dict[State, Tuple[float, float]],
        values: Mapping[State, float],
        maximise: bool,
    ) -> Dict[State, float]:
        """The distribution nature's greedy inner optimum actually picks.

        Same saturation order as :meth:`_inner_optimum`, but returning
        the chosen probabilities instead of the expectation — the
        building block for extracting an extremal member chain.
        """
        targets = list(row)
        distribution = {t: row[t][0] for t in targets}
        remaining = 1.0 - sum(distribution.values())
        order = sorted(targets, key=lambda t: values[t], reverse=maximise)
        for target in order:
            if remaining <= 0:
                break
            take = min(row[target][1] - row[target][0], remaining)
            distribution[target] += take
            remaining -= take
        return distribution

    def extremal_chain(
        self, values: Mapping[State, float], maximise: bool
    ) -> DTMC:
        """Nature's extremal member chain for a converged value vector.

        Freezes, per state, the greedy inner-optimum distribution — a
        concrete DTMC inside the intervals witnessing the robust value.
        Row feasibility (``Σ lower ≤ 1 ≤ Σ upper``) guarantees the
        greedy rows sum to one (normalised here against float drift).
        """
        transitions: Dict[State, Dict[State, float]] = {}
        for state in self.states:
            row = self._inner_distribution(
                self.intervals[state], values, maximise
            )
            total = sum(row.values())
            transitions[state] = {
                t: p / total for t, p in row.items() if p > 0.0
            }
        return DTMC(
            states=self.states,
            transitions=transitions,
            initial_state=self.initial_state,
            labels=self.labels,
            state_rewards=self.state_rewards,
        )

    def reachability_values_report(
        self,
        targets: Set[State],
        maximise: bool,
        max_iterations: Optional[int] = None,
        tolerance: Optional[float] = None,
    ) -> Tuple[Dict[State, float], VIReport]:
        """Robust reachability values plus convergence accounting."""
        targets = set(targets)
        cap = _VI_MAX_ITERATIONS if max_iterations is None else max_iterations
        tol = _VI_TOLERANCE if tolerance is None else tolerance
        values = {s: (1.0 if s in targets else 0.0) for s in self.states}
        iterations = 0
        delta = np.inf
        converged = False
        while iterations < cap:
            iterations += 1
            delta = 0.0
            for state in self.states:
                if state in targets:
                    continue
                updated = self._inner_optimum(
                    self.intervals[state], values, maximise
                )
                delta = max(delta, abs(updated - values[state]))
                values[state] = updated
            if delta < tol:
                converged = True
                break
        clipped = {s: float(np.clip(v, 0.0, 1.0)) for s, v in values.items()}
        return clipped, VIReport(iterations, converged, float(delta))

    def reachability_values(
        self, targets: Set[State], maximise: bool
    ) -> Dict[State, float]:
        """Per-state robust reachability probability (min or max)."""
        values, _report = self.reachability_values_report(targets, maximise)
        return values

    def reachability_probability(
        self, targets: Set[State], maximise: bool
    ) -> float:
        """Robust reachability probability at the initial state."""
        return self.reachability_values(targets, maximise)[self.initial_state]

    # ------------------------------------------------------------------
    # Qualitative analysis
    # ------------------------------------------------------------------
    def _adversarial_trap_states(self, targets: Set[State]) -> Set[State]:
        """States from which some member chain avoids ``targets`` forever.

        A target-avoiding *trap* is a set ``C`` of non-target states in
        which every member state (a) has all its mandatory mass
        (lower bounds) inside ``C`` and (b) can feasibly place its whole
        unit of mass inside ``C`` (``Σ_{t∈C} upper ≥ 1``).  The greatest
        such ``C`` comes from the obvious shrinking fixpoint; a state can
        then be steered into the trap along any possible
        (upper-bound-positive) path.
        """
        candidates = set(self.states) - targets
        changed = True
        while changed:
            changed = False
            for state in list(candidates):
                row = self.intervals[state]
                mandatory_inside = all(
                    target in candidates
                    for target, (lower, _upper) in row.items()
                    if lower > 0
                )
                feasible_mass = sum(
                    upper
                    for target, (_lower, upper) in row.items()
                    if target in candidates
                ) >= 1.0 - 1e-12
                if not (mandatory_inside and feasible_mass):
                    candidates.discard(state)
                    changed = True
        trap = set(candidates)
        # Backward closure: the adversary routes into the trap along any
        # possibly-positive edge.
        reachable = set(trap)
        changed = True
        while changed:
            changed = False
            for state in self.states:
                if state in reachable or state in targets:
                    continue
                row = self.intervals[state]
                if any(
                    target in reachable and upper > 0
                    for target, (_lower, upper) in row.items()
                ):
                    reachable.add(state)
                    changed = True
        return reachable

    def _nature_prob1_states(self, targets: Set[State]) -> Set[State]:
        """States from which *some* member chain reaches surely.

        Greatest fixpoint: keep a state while it can feasibly put all
        its mass inside the kept set (no mandatory leakage) *and* still
        has a possibly-positive path to the targets inside the set.
        """
        kept = set(self.states)
        while True:
            # Within `kept`, which states can possibly reach the targets?
            reach = set(targets)
            changed = True
            while changed:
                changed = False
                for state in kept:
                    if state in reach:
                        continue
                    row = self.intervals[state]
                    if any(
                        target in reach and upper > 0 and target in kept | targets
                        for target, (_lower, upper) in row.items()
                    ):
                        reach.add(state)
                        changed = True
            updated = set(targets)
            for state in kept:
                if state in targets:
                    continue
                row = self.intervals[state]
                no_leak = all(
                    target in kept or lower == 0
                    for target, (lower, _upper) in row.items()
                )
                feasible_mass = sum(
                    upper
                    for target, (_lower, upper) in row.items()
                    if target in kept
                ) >= 1.0 - 1e-12
                if no_leak and feasible_mass and state in reach:
                    updated.add(state)
            if updated == kept | targets or updated == kept:
                return updated
            kept = updated

    def expected_reward_values_report(
        self,
        targets: Set[State],
        maximise: bool,
        max_iterations: Optional[int] = None,
        tolerance: Optional[float] = None,
    ) -> Tuple[Dict[State, float], VIReport]:
        """Robust expected rewards plus convergence accounting.

        ``inf`` where reward can diverge: for the worst case
        (``maximise=True``) wherever *some* member chain misses the
        targets with positive probability; for the best case wherever
        *every* member chain does.  Finiteness is decided by qualitative
        graph analysis (no numeric thresholds); the numeric sweep still
        carries a belt-and-braces divergence detector for callers that
        cap the iterations.
        """
        targets = set(targets)
        cap = _VI_MAX_ITERATIONS if max_iterations is None else max_iterations
        tol = _VI_TOLERANCE if tolerance is None else tolerance
        if maximise:
            infinite = self._adversarial_trap_states(targets)
        else:
            infinite = set(self.states) - self._nature_prob1_states(targets)
        values: Dict[State, float] = {}
        for state in self.states:
            if state in targets:
                values[state] = 0.0
            elif state in infinite:
                values[state] = np.inf
            else:
                values[state] = 0.0
        finite = [
            s for s in self.states if s not in targets and values[s] == 0.0
        ]
        iterations = 0
        delta = np.inf
        converged = False
        diverged = False
        while iterations < cap and not diverged:
            iterations += 1
            delta = 0.0
            for state in finite:
                row = self.intervals[state]
                if any(values[t] == np.inf for t in row):
                    # Adversary can route into an infinite-value state
                    # only if the interval forces positive mass there.
                    forced_inf = any(
                        values[t] == np.inf and row[t][0] > 0 for t in row
                    )
                    if forced_inf:
                        values[state] = np.inf
                        continue
                    capped = {
                        t: bounds
                        for t, bounds in row.items()
                        if values[t] != np.inf
                    }
                    updated = self.state_rewards[state] + self._inner_optimum(
                        capped, values, maximise
                    )
                else:
                    updated = self.state_rewards[state] + self._inner_optimum(
                        row, values, maximise
                    )
                if values[state] != np.inf:
                    delta = max(delta, abs(updated - values[state]))
                values[state] = updated
                if np.isnan(updated) or (
                    values[state] != np.inf
                    and abs(values[state]) > _VI_DIVERGENCE_LIMIT
                ):
                    diverged = True
            if delta < tol:
                converged = True
                break
        report = VIReport(
            iterations, converged and not diverged, float(delta), diverged
        )
        return values, report

    def expected_reward_values(
        self, targets: Set[State], maximise: bool
    ) -> Dict[State, float]:
        """Per-state robust expected reward to reach ``targets``."""
        values, _report = self.expected_reward_values_report(targets, maximise)
        return values

    def expected_reward(self, targets: Set[State], maximise: bool) -> float:
        """Robust expected reward at the initial state."""
        return self.expected_reward_values(targets, maximise)[self.initial_state]

    def __repr__(self) -> str:
        return f"IntervalDTMC(|S|={len(self.states)})"


class IntervalMDP:
    """An MDP with interval transition uncertainty (convex MDP).

    The Puggelli et al. setting the paper's related work builds on:
    the controller picks actions, nature picks any distribution inside
    the chosen action's intervals.  Robust value iteration solves the
    resulting zero-sum step game; nature's inner optimum has the same
    greedy closed form as for :class:`IntervalDTMC`.

    Parameters
    ----------
    states:
        State identifiers.
    intervals:
        ``{state: {action: {target: (lower, upper)}}}``.
    initial_state / labels:
        As for :class:`~repro.mdp.MDP`.
    """

    def __init__(
        self,
        states,
        intervals: Mapping[State, Mapping[object, Mapping[State, Tuple[float, float]]]],
        initial_state: State,
        labels: Optional[Mapping[State, Iterable[str]]] = None,
    ):
        self.states = list(states)
        if initial_state not in set(self.states):
            raise ModelValidationError(f"unknown initial state {initial_state!r}")
        self.initial_state = initial_state
        self.intervals: Dict[State, Dict[object, Dict[State, Tuple[float, float]]]] = {}
        for state in self.states:
            action_map = intervals.get(state)
            if not action_map:
                raise ModelValidationError(f"state {state!r} enables no action")
            rows = {}
            for action, row in action_map.items():
                lower_sum = sum(bounds[0] for bounds in row.values())
                upper_sum = sum(bounds[1] for bounds in row.values())
                for target, (lower, upper) in row.items():
                    if target not in set(self.states):
                        raise ModelValidationError(f"unknown target {target!r}")
                    if not 0.0 <= lower <= upper <= 1.0 + 1e-12:
                        raise ModelValidationError(
                            f"bad interval on {state!r}/{action!r} -> {target!r}"
                        )
                if lower_sum > 1.0 + 1e-9 or upper_sum < 1.0 - 1e-9:
                    raise ModelValidationError(
                        f"row {state!r}/{action!r} infeasible"
                    )
                rows[action] = {
                    t: (float(l), float(min(u, 1.0))) for t, (l, u) in row.items()
                }
            self.intervals[state] = rows
        self.labels = {
            s: frozenset((labels or {}).get(s, frozenset())) for s in self.states
        }

    @staticmethod
    def from_mdp(mdp, epsilon: float) -> "IntervalMDP":
        """Blow a concrete MDP up into ±ε intervals (structure kept)."""
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        intervals = {
            s: {a: _epsilon_ball_row(dist, epsilon) for a, dist in rows.items()}
            for s, rows in mdp.transitions.items()
        }
        return IntervalMDP(
            states=mdp.states,
            intervals=intervals,
            initial_state=mdp.initial_state,
            labels=mdp.labels,
        )

    def actions(self, state: State):
        """Actions enabled in ``state``."""
        return list(self.intervals[state])

    def states_with_atom(self, atom: str):
        """All states labelled with ``atom``."""
        return frozenset(s for s, props in self.labels.items() if atom in props)

    def reachability_values(
        self,
        targets: Set[State],
        controller_maximises: bool,
        nature_maximises: bool,
    ) -> Dict[State, float]:
        """Robust reachability: controller over actions, nature inside
        the chosen action's intervals.

        The four combinations cover PRISM-style semantics on convex
        MDPs; the usual robust verification pairs an optimistic
        controller with a pessimistic nature
        (``controller_maximises=True, nature_maximises=False``).
        """
        targets = set(targets)
        values = {s: (1.0 if s in targets else 0.0) for s in self.states}
        pick = max if controller_maximises else min
        for _ in range(_VI_MAX_ITERATIONS):
            delta = 0.0
            for state in self.states:
                if state in targets:
                    continue
                best = pick(
                    IntervalDTMC._inner_optimum(row, values, nature_maximises)
                    for row in self.intervals[state].values()
                )
                delta = max(delta, abs(best - values[state]))
                values[state] = best
            if delta < _VI_TOLERANCE:
                break
        return {s: float(np.clip(v, 0.0, 1.0)) for s, v in values.items()}

    def reachability_probability(
        self,
        targets: Set[State],
        controller_maximises: bool = True,
        nature_maximises: bool = False,
    ) -> float:
        """Robust reachability at the initial state."""
        return self.reachability_values(
            targets, controller_maximises, nature_maximises
        )[self.initial_state]

    def __repr__(self) -> str:
        return f"IntervalMDP(|S|={len(self.states)})"


def robustness_certificate(
    chain: DTMC,
    formula,
    epsilon: float,
) -> bool:
    """Certify that every ε-perturbation of ``chain`` satisfies ``formula``.

    Builds the ±ε interval chain (structure preserved) and checks the
    property against the adversarial bound: for an upper-bound formula
    nature maximises the checked quantity, for a lower bound it
    minimises.  Supports the non-nested ``P ⋈ b [φ1 U φ2]`` and
    ``R ⋈ b [F φ]`` fragment used by the repairs.

    Combined with Model Repair this closes the trust loop: a repair with
    Proposition 1 bound ε whose certificate holds at ε' stays trusted
    under any further drift up to ε'.
    """
    from repro.checking.parametric import label_satisfaction_set
    from repro.logic.pctl import (
        ProbabilisticOperator,
        RewardOperator,
        Until,
        check_comparison,
    )

    interval_chain = IntervalDTMC.from_dtmc(chain, epsilon)
    if isinstance(formula, ProbabilisticOperator):
        path = formula.path
        if not isinstance(path, Until) or path.step_bound is not None:
            raise TypeError("certificate supports unbounded until formulas")
        targets = label_satisfaction_set(chain.states, chain.labels, path.right)
        maximise = formula.comparison in ("<", "<=")
        value = interval_chain.reachability_probability(set(targets), maximise)
        return check_comparison(formula.comparison, value, formula.bound)
    if isinstance(formula, RewardOperator):
        targets = label_satisfaction_set(
            chain.states, chain.labels, formula.path.right
        )
        maximise = formula.comparison in ("<", "<=")
        value = interval_chain.expected_reward(set(targets), maximise)
        return check_comparison(formula.comparison, value, formula.bound)
    raise TypeError("certificate expects a top-level P or R operator")
