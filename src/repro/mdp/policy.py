"""Policies for MDPs: deterministic and stochastic.

A policy maps each state to a distribution over enabled actions.  Both
classes expose the same minimal protocol — ``action_distribution(state)``
and ``sample(state, rng)`` — which is what :meth:`repro.mdp.MDP.
induced_dtmc` and the simulator consume.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping

import numpy as np

State = Hashable
Action = Hashable


class DeterministicPolicy:
    """A memoryless deterministic policy ``state -> action``.

    Examples
    --------
    >>> policy = DeterministicPolicy({"s0": "go", "s1": "stop"})
    >>> policy["s0"]
    'go'
    """

    def __init__(self, mapping: Mapping[State, Action]):
        self.mapping: Dict[State, Action] = dict(mapping)

    def __getitem__(self, state: State) -> Action:
        return self.mapping[state]

    def __contains__(self, state: State) -> bool:
        return state in self.mapping

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DeterministicPolicy):
            return self.mapping == other.mapping
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self.mapping.items()))

    def action_distribution(self, state: State) -> Dict[Action, float]:
        """Point distribution on the chosen action."""
        return {self.mapping[state]: 1.0}

    def sample(self, state: State, rng: np.random.Generator) -> Action:
        """The chosen action (ignores the rng)."""
        return self.mapping[state]

    def items(self):
        """Iterate over ``(state, action)`` pairs."""
        return self.mapping.items()

    def __repr__(self) -> str:
        return f"DeterministicPolicy({self.mapping!r})"


class StochasticPolicy:
    """A memoryless stochastic policy ``state -> distribution over actions``.

    Each state's distribution must sum to 1 (within tolerance).
    """

    def __init__(self, mapping: Mapping[State, Mapping[Action, float]]):
        self.mapping: Dict[State, Dict[Action, float]] = {}
        for state, dist in mapping.items():
            total = sum(dist.values())
            if abs(total - 1.0) > 1e-6:
                raise ValueError(
                    f"policy distribution in state {state!r} sums to {total}"
                )
            self.mapping[state] = {a: float(p) for a, p in dist.items() if p > 0.0}

    def action_distribution(self, state: State) -> Dict[Action, float]:
        """The action distribution at ``state``."""
        return dict(self.mapping[state])

    def sample(self, state: State, rng: np.random.Generator) -> Action:
        """Sample an action according to the state's distribution."""
        actions = list(self.mapping[state])
        probs = np.array([self.mapping[state][a] for a in actions])
        return actions[rng.choice(len(actions), p=probs / probs.sum())]

    def greedy(self) -> DeterministicPolicy:
        """The deterministic policy picking each state's modal action."""
        return DeterministicPolicy(
            {s: max(dist, key=dist.get) for s, dist in self.mapping.items()}
        )

    def __repr__(self) -> str:
        return f"StochasticPolicy(|S|={len(self.mapping)})"


def uniform_policy(mdp) -> StochasticPolicy:
    """The policy choosing uniformly among enabled actions everywhere."""
    mapping = {}
    for state in mdp.states:
        actions = mdp.actions(state)
        mapping[state] = {a: 1.0 / len(actions) for a in actions}
    return StochasticPolicy(mapping)
