"""Convenience constructors for common model shapes.

Used throughout the tests, examples and benchmarks: simple chains, grid
random walks, matrix-backed chains, and seeded random models for
property-based testing.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Optional, Sequence

import numpy as np

from repro.mdp.model import DTMC, MDP

State = Hashable


def chain_dtmc(
    length: int,
    forward_probability: float = 0.9,
    reward_per_state: float = 1.0,
) -> DTMC:
    """A birth-chain of ``length`` states ``0 .. length-1``.

    Each interior state moves forward with ``forward_probability`` and
    stays put otherwise; the last state is absorbing and labelled
    ``"goal"``.
    """
    if length < 2:
        raise ValueError("chain needs at least 2 states")
    states = list(range(length))
    transitions: Dict[State, Dict[State, float]] = {}
    for state in states[:-1]:
        transitions[state] = {
            state + 1: forward_probability,
            state: 1.0 - forward_probability,
        }
    transitions[states[-1]] = {states[-1]: 1.0}
    rewards = {s: reward_per_state for s in states[:-1]}
    rewards[states[-1]] = 0.0
    return DTMC(
        states=states,
        transitions=transitions,
        initial_state=0,
        labels={states[-1]: {"goal"}},
        state_rewards=rewards,
    )


def grid_dtmc(rows: int, cols: int, slip: float = 0.1) -> DTMC:
    """A random walk on a grid drifting toward ``(0, 0)``.

    From each cell the walker moves up or left (splitting the
    non-slip mass equally among available directions) and stays put with
    probability ``slip``; the corner ``(0, 0)`` is absorbing and
    labelled ``"home"``.
    """
    states = [(r, c) for r in range(rows) for c in range(cols)]
    transitions: Dict[State, Dict[State, float]] = {}
    for r, c in states:
        if (r, c) == (0, 0):
            transitions[(r, c)] = {(0, 0): 1.0}
            continue
        moves = []
        if r > 0:
            moves.append((r - 1, c))
        if c > 0:
            moves.append((r, c - 1))
        row = {(r, c): slip}
        share = (1.0 - slip) / len(moves)
        for move in moves:
            row[move] = row.get(move, 0.0) + share
        transitions[(r, c)] = row
    return DTMC(
        states=states,
        transitions=transitions,
        initial_state=(rows - 1, cols - 1),
        labels={(0, 0): {"home"}},
        state_rewards={s: (0.0 if s == (0, 0) else 1.0) for s in states},
    )


def dtmc_from_matrix(
    matrix: np.ndarray,
    initial_state: int = 0,
    labels: Optional[Mapping[int, Sequence[str]]] = None,
    state_rewards: Optional[Mapping[int, float]] = None,
) -> DTMC:
    """Wrap a row-stochastic numpy matrix as a chain on states ``0..n-1``."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError("transition matrix must be square")
    n = matrix.shape[0]
    transitions = {
        i: {j: float(matrix[i, j]) for j in range(n) if matrix[i, j] > 0.0}
        for i in range(n)
    }
    return DTMC(
        states=list(range(n)),
        transitions=transitions,
        initial_state=initial_state,
        labels=labels,
        state_rewards=state_rewards,
    )


def random_dtmc(
    num_states: int,
    density: float = 0.5,
    seed: Optional[int] = None,
    num_labels: int = 2,
) -> DTMC:
    """A random chain for property-based tests (always valid)."""
    rng = np.random.default_rng(seed)
    states = list(range(num_states))
    transitions: Dict[State, Dict[State, float]] = {}
    for state in states:
        support_size = max(1, int(round(density * num_states)))
        support = rng.choice(num_states, size=support_size, replace=False)
        weights = rng.random(support_size) + 1e-3
        weights /= weights.sum()
        transitions[state] = {
            int(target): float(weight) for target, weight in zip(support, weights)
        }
    labels: Dict[State, set] = {}
    atoms = [f"l{k}" for k in range(num_labels)]
    for state in states:
        chosen = {atom for atom in atoms if rng.random() < 0.3}
        if chosen:
            labels[state] = chosen
    rewards = {s: float(rng.random()) for s in states}
    return DTMC(
        states=states,
        transitions=transitions,
        initial_state=0,
        labels=labels,
        state_rewards=rewards,
    )


def random_mdp(
    num_states: int,
    num_actions: int = 2,
    density: float = 0.5,
    seed: Optional[int] = None,
) -> MDP:
    """A random MDP for property-based tests (always valid)."""
    rng = np.random.default_rng(seed)
    states = list(range(num_states))
    transitions: Dict[State, Dict[str, Dict[State, float]]] = {}
    for state in states:
        rows: Dict[str, Dict[State, float]] = {}
        for action_index in range(num_actions):
            support_size = max(1, int(round(density * num_states)))
            support = rng.choice(num_states, size=support_size, replace=False)
            weights = rng.random(support_size) + 1e-3
            weights /= weights.sum()
            rows[f"a{action_index}"] = {
                int(target): float(weight)
                for target, weight in zip(support, weights)
            }
        transitions[state] = rows
    rewards = {s: float(rng.random()) for s in states}
    return MDP(
        states=states,
        transitions=transitions,
        initial_state=0,
        state_rewards=rewards,
    )
