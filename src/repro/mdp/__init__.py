"""Markov decision process and Markov chain substrate.

This package implements the dynamical models of the paper — labelled
MDPs ``(S, A, R, P, L)`` and discrete-time Markov chains — together with
policies, dynamic-programming solvers, trajectory sampling and the
ε-bisimulation distance used by Proposition 1.

Public API
----------
``MDP`` / ``DTMC``
    The two model classes.  A ``DTMC`` is what an ``MDP`` induces under a
    policy, and what maximum-likelihood learning produces from traces.
``DeterministicPolicy`` / ``StochasticPolicy``
    Mappings from states to actions / action distributions.
``Trajectory``
    A finite alternating state-action sequence (the paper's ``U``).
``value_iteration`` / ``policy_iteration`` / ``policy_evaluation`` /
``q_values`` / ``expected_total_reward``
    Dynamic-programming solvers.
``Simulator``
    Seeded trajectory sampler for MDPs and DTMCs.
``perturbation_bound`` / ``is_epsilon_bisimilar`` / ``path_probability``
    ε-bisimulation utilities (Proposition 1).
"""

from repro.mdp.model import DTMC, MDP, ModelValidationError
from repro.mdp.policy import DeterministicPolicy, StochasticPolicy, uniform_policy
from repro.mdp.trajectory import Trajectory
from repro.mdp.solvers import (
    expected_total_reward,
    policy_evaluation,
    policy_iteration,
    q_values,
    value_iteration,
)
from repro.mdp.simulation import Simulator
from repro.mdp.bisimulation import (
    is_epsilon_bisimilar,
    path_probability,
    perturbation_bound,
)
from repro.mdp.interval import (
    IntervalDTMC,
    IntervalMDP,
    VIReport,
    robustness_certificate,
)
from repro.mdp.lumping import bisimulation_partition, quotient_chain
from repro.mdp.builders import (
    chain_dtmc,
    dtmc_from_matrix,
    grid_dtmc,
    random_dtmc,
    random_mdp,
)

__all__ = [
    "DTMC",
    "MDP",
    "ModelValidationError",
    "DeterministicPolicy",
    "StochasticPolicy",
    "uniform_policy",
    "Trajectory",
    "value_iteration",
    "policy_iteration",
    "policy_evaluation",
    "q_values",
    "expected_total_reward",
    "Simulator",
    "perturbation_bound",
    "is_epsilon_bisimilar",
    "path_probability",
    "IntervalDTMC",
    "IntervalMDP",
    "VIReport",
    "robustness_certificate",
    "bisimulation_partition",
    "quotient_chain",
    "chain_dtmc",
    "grid_dtmc",
    "dtmc_from_matrix",
    "random_dtmc",
    "random_mdp",
]
