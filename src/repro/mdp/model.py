"""Labelled Markov decision processes and discrete-time Markov chains.

The paper's models are tuples ``M = (S, A, R, P, L)``: a finite state set,
finite action set, state reward function, transition kernel and an atomic
proposition labelling.  A :class:`DTMC` is the action-free special case —
it is both what an :class:`MDP` induces under a policy and what
maximum-likelihood learning (:mod:`repro.learning.mle`) produces from
trace data.

States and actions may be any hashable values (strings, tuples, ints);
the model classes maintain a stable ordering and index maps so numeric
code (:mod:`repro.checking`, :mod:`repro.mdp.solvers`) can work on dense
arrays.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

State = Hashable
Action = Hashable

_PROB_TOLERANCE = 1e-9


class ModelValidationError(ValueError):
    """Raised when a model's transition structure is not stochastic."""


def _freeze_labels(
    states: Sequence[State], labels: Optional[Mapping[State, Iterable[str]]]
) -> Dict[State, FrozenSet[str]]:
    frozen: Dict[State, FrozenSet[str]] = {s: frozenset() for s in states}
    if labels:
        for state, atoms in labels.items():
            if state not in frozen:
                raise ModelValidationError(f"label on unknown state {state!r}")
            frozen[state] = frozenset(atoms)
    return frozen


def _check_distribution(owner: str, dist: Mapping[State, float]) -> None:
    total = 0.0
    for target, prob in dist.items():
        # The negated comparison also catches NaN (all NaN comparisons
        # are false, so a plain out-of-range check would let NaN through).
        if not (-_PROB_TOLERANCE <= prob <= 1 + _PROB_TOLERANCE):
            raise ModelValidationError(
                f"{owner}: probability {prob} for target {target!r} out of [0, 1]"
            )
        total += prob
    if not (abs(total - 1.0) <= 1e-6):
        raise ModelValidationError(f"{owner}: outgoing probabilities sum to {total}")


class DTMC:
    """A labelled discrete-time Markov chain with state rewards.

    Parameters
    ----------
    states:
        Ordered collection of distinct hashable state identifiers.
    transitions:
        ``{source: {target: probability}}``; each row must sum to 1.
        Absorbing states may be given either an explicit self-loop or no
        entry at all (a self-loop is added).
    initial_state:
        The state the chain starts in (the paper's ``s0``).
    labels:
        ``{state: iterable of atomic propositions}``.
    state_rewards:
        ``{state: reward}``; missing states default to 0.  This is the
        paper's ``R`` restricted to a chain.

    Examples
    --------
    >>> chain = DTMC(
    ...     states=["a", "b"],
    ...     transitions={"a": {"a": 0.5, "b": 0.5}, "b": {"b": 1.0}},
    ...     initial_state="a",
    ...     labels={"b": {"done"}},
    ... )
    >>> chain.probability("a", "b")
    0.5
    """

    def __init__(
        self,
        states: Sequence[State],
        transitions: Mapping[State, Mapping[State, float]],
        initial_state: State,
        labels: Optional[Mapping[State, Iterable[str]]] = None,
        state_rewards: Optional[Mapping[State, float]] = None,
    ):
        self.states: List[State] = list(states)
        if len(set(self.states)) != len(self.states):
            raise ModelValidationError("duplicate states")
        if initial_state not in set(self.states):
            raise ModelValidationError(f"unknown initial state {initial_state!r}")
        self.initial_state = initial_state
        self.index: Dict[State, int] = {s: i for i, s in enumerate(self.states)}
        self.transitions: Dict[State, Dict[State, float]] = {}
        for source in self.states:
            row = dict(transitions.get(source, {}))
            if not row:
                row = {source: 1.0}
            for target in row:
                if target not in self.index:
                    raise ModelValidationError(
                        f"transition {source!r} -> unknown state {target!r}"
                    )
            _check_distribution(f"state {source!r}", row)
            self.transitions[source] = {t: float(p) for t, p in row.items() if p > 0.0}
        self.labels = _freeze_labels(self.states, labels)
        self.state_rewards: Dict[State, float] = {
            s: float((state_rewards or {}).get(s, 0.0)) for s in self.states
        }

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        """Number of states."""
        return len(self.states)

    def probability(self, source: State, target: State) -> float:
        """Transition probability ``P(target | source)`` (0 if absent)."""
        return self.transitions[source].get(target, 0.0)

    def successors(self, state: State) -> List[State]:
        """States reachable in one step with positive probability."""
        return list(self.transitions[state])

    def atoms(self) -> FrozenSet[str]:
        """All atomic propositions used anywhere in the labelling."""
        atoms: set = set()
        for props in self.labels.values():
            atoms |= props
        return frozenset(atoms)

    def states_with_atom(self, atom: str) -> FrozenSet[State]:
        """All states labelled with ``atom``."""
        return frozenset(s for s, props in self.labels.items() if atom in props)

    def transition_matrix(self) -> np.ndarray:
        """Dense row-stochastic matrix ordered by ``self.states``."""
        matrix = np.zeros((self.num_states, self.num_states))
        for source, row in self.transitions.items():
            i = self.index[source]
            for target, prob in row.items():
                matrix[i, self.index[target]] = prob
        return matrix

    def reward_vector(self) -> np.ndarray:
        """State rewards ordered by ``self.states``."""
        return np.array([self.state_rewards[s] for s in self.states])

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def with_transitions(
        self, transitions: Mapping[State, Mapping[State, float]]
    ) -> "DTMC":
        """A copy of this chain with replaced transition rows.

        Rows absent from ``transitions`` are kept as-is; this is how
        Model Repair materialises a repaired chain from a solved
        perturbation.
        """
        merged = {s: dict(self.transitions[s]) for s in self.states}
        for source, row in transitions.items():
            merged[source] = dict(row)
        return DTMC(
            states=self.states,
            transitions=merged,
            initial_state=self.initial_state,
            labels=self.labels,
            state_rewards=self.state_rewards,
        )

    def with_rewards(self, state_rewards: Mapping[State, float]) -> "DTMC":
        """A copy with a replaced state-reward function."""
        return DTMC(
            states=self.states,
            transitions=self.transitions,
            initial_state=self.initial_state,
            labels=self.labels,
            state_rewards=state_rewards,
        )

    def __repr__(self) -> str:
        return (
            f"DTMC(|S|={self.num_states}, init={self.initial_state!r}, "
            f"atoms={sorted(self.atoms())})"
        )


class MDP:
    """A labelled Markov decision process ``(S, A, R, P, L)``.

    Parameters
    ----------
    states:
        Ordered collection of distinct hashable state identifiers.
    transitions:
        ``{state: {action: {target: probability}}}``.  Every state must
        enable at least one action; each action's row must sum to 1.
    initial_state:
        The paper's ``s0``.
    labels:
        ``{state: iterable of atomic propositions}``.
    state_rewards:
        ``{state: reward}`` — the paper's ``R`` (rewards on states).
    action_rewards:
        Optional ``{(state, action): reward}`` refinement used by the
        IRL machinery; defaults to 0.
    """

    def __init__(
        self,
        states: Sequence[State],
        transitions: Mapping[State, Mapping[Action, Mapping[State, float]]],
        initial_state: State,
        labels: Optional[Mapping[State, Iterable[str]]] = None,
        state_rewards: Optional[Mapping[State, float]] = None,
        action_rewards: Optional[Mapping[Tuple[State, Action], float]] = None,
    ):
        self.states: List[State] = list(states)
        if len(set(self.states)) != len(self.states):
            raise ModelValidationError("duplicate states")
        if initial_state not in set(self.states):
            raise ModelValidationError(f"unknown initial state {initial_state!r}")
        self.initial_state = initial_state
        self.index: Dict[State, int] = {s: i for i, s in enumerate(self.states)}
        self.transitions: Dict[State, Dict[Action, Dict[State, float]]] = {}
        for state in self.states:
            action_map = transitions.get(state)
            if not action_map:
                raise ModelValidationError(f"state {state!r} enables no action")
            rows: Dict[Action, Dict[State, float]] = {}
            for action, dist in action_map.items():
                for target in dist:
                    if target not in self.index:
                        raise ModelValidationError(
                            f"{state!r}/{action!r} -> unknown state {target!r}"
                        )
                _check_distribution(f"state {state!r} action {action!r}", dist)
                rows[action] = {t: float(p) for t, p in dist.items() if p > 0.0}
            self.transitions[state] = rows
        self.labels = _freeze_labels(self.states, labels)
        self.state_rewards: Dict[State, float] = {
            s: float((state_rewards or {}).get(s, 0.0)) for s in self.states
        }
        self.action_rewards: Dict[Tuple[State, Action], float] = {
            key: float(value) for key, value in (action_rewards or {}).items()
        }

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        """Number of states."""
        return len(self.states)

    def actions(self, state: State) -> List[Action]:
        """Actions enabled in ``state``."""
        return list(self.transitions[state])

    def all_actions(self) -> List[Action]:
        """The union of actions enabled anywhere, in first-seen order."""
        seen: Dict[Action, None] = {}
        for state in self.states:
            for action in self.transitions[state]:
                seen.setdefault(action, None)
        return list(seen)

    def probability(self, state: State, action: Action, target: State) -> float:
        """``P(target | state, action)`` (0 if absent)."""
        return self.transitions[state][action].get(target, 0.0)

    def successors(self, state: State, action: Action) -> List[State]:
        """Positive-probability successors of ``(state, action)``."""
        return list(self.transitions[state][action])

    def reward(self, state: State, action: Optional[Action] = None) -> float:
        """Reward of a state, plus the action refinement if given."""
        value = self.state_rewards[state]
        if action is not None:
            value += self.action_rewards.get((state, action), 0.0)
        return value

    def atoms(self) -> FrozenSet[str]:
        """All atomic propositions used anywhere in the labelling."""
        atoms: set = set()
        for props in self.labels.values():
            atoms |= props
        return frozenset(atoms)

    def states_with_atom(self, atom: str) -> FrozenSet[State]:
        """All states labelled with ``atom``."""
        return frozenset(s for s, props in self.labels.items() if atom in props)

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def induced_dtmc(self, policy) -> DTMC:
        """The Markov chain this MDP induces under ``policy``.

        ``policy`` may be a :class:`~repro.mdp.policy.DeterministicPolicy`
        or :class:`~repro.mdp.policy.StochasticPolicy`; rewards and labels
        carry over unchanged.
        """
        transitions: Dict[State, Dict[State, float]] = {}
        for state in self.states:
            row: Dict[State, float] = {}
            for action, weight in policy.action_distribution(state).items():
                if weight == 0.0:
                    continue
                if action not in self.transitions[state]:
                    raise ModelValidationError(
                        f"policy picks disabled action {action!r} in {state!r}"
                    )
                for target, prob in self.transitions[state][action].items():
                    row[target] = row.get(target, 0.0) + weight * prob
            transitions[state] = row
        return DTMC(
            states=self.states,
            transitions=transitions,
            initial_state=self.initial_state,
            labels=self.labels,
            state_rewards=self.state_rewards,
        )

    def with_rewards(
        self,
        state_rewards: Optional[Mapping[State, float]] = None,
        action_rewards: Optional[Mapping[Tuple[State, Action], float]] = None,
    ) -> "MDP":
        """A copy with replaced reward functions (Reward Repair output)."""
        return MDP(
            states=self.states,
            transitions=self.transitions,
            initial_state=self.initial_state,
            labels=self.labels,
            state_rewards=(
                state_rewards if state_rewards is not None else self.state_rewards
            ),
            action_rewards=(
                action_rewards if action_rewards is not None else self.action_rewards
            ),
        )

    def with_transitions(
        self, transitions: Mapping[State, Mapping[Action, Mapping[State, float]]]
    ) -> "MDP":
        """A copy with selected ``(state, action)`` rows replaced."""
        merged: Dict[State, Dict[Action, Dict[State, float]]] = {
            s: {a: dict(d) for a, d in rows.items()}
            for s, rows in self.transitions.items()
        }
        for state, rows in transitions.items():
            for action, dist in rows.items():
                merged[state][action] = dict(dist)
        return MDP(
            states=self.states,
            transitions=merged,
            initial_state=self.initial_state,
            labels=self.labels,
            state_rewards=self.state_rewards,
            action_rewards=self.action_rewards,
        )

    def __repr__(self) -> str:
        return (
            f"MDP(|S|={self.num_states}, |A|={len(self.all_actions())}, "
            f"init={self.initial_state!r})"
        )
