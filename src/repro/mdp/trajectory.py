"""Finite trajectories through MDPs and Markov chains.

The paper writes a trajectory as ``U = (s1, a1) ... (sn, an)`` — an
alternating state/action sequence.  For chains (no actions) the action
slots are ``None``.  Trajectories are immutable and hashable so they can
index trajectory distributions (:mod:`repro.learning`).
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Optional, Sequence, Tuple

State = Hashable
Action = Hashable


class Trajectory:
    """An immutable alternating state/action sequence.

    Parameters
    ----------
    steps:
        Iterable of ``(state, action)`` pairs.  The final pair's action
        may be ``None`` (trajectory ending in a state).

    Examples
    --------
    >>> u = Trajectory([("s0", "a"), ("s1", None)])
    >>> u.states()
    ('s0', 's1')
    >>> len(u)
    2
    """

    __slots__ = ("steps",)

    def __init__(self, steps: Iterable[Tuple[State, Optional[Action]]]):
        self.steps: Tuple[Tuple[State, Optional[Action]], ...] = tuple(
            (state, action) for state, action in steps
        )
        if not self.steps:
            raise ValueError("trajectory must contain at least one state")

    @staticmethod
    def from_states(states: Sequence[State]) -> "Trajectory":
        """A pure state path (chain trajectory, all actions ``None``)."""
        return Trajectory((s, None) for s in states)

    def states(self) -> Tuple[State, ...]:
        """The state sequence."""
        return tuple(state for state, _ in self.steps)

    def actions(self) -> Tuple[Optional[Action], ...]:
        """The action sequence (may contain ``None``)."""
        return tuple(action for _, action in self.steps)

    def state_at(self, index: int) -> State:
        """The state at position ``index``."""
        return self.steps[index][0]

    def action_at(self, index: int) -> Optional[Action]:
        """The action at position ``index``."""
        return self.steps[index][1]

    def transitions(self) -> List[Tuple[State, Optional[Action], State]]:
        """All ``(state, action, next_state)`` triples along the path."""
        return [
            (self.steps[i][0], self.steps[i][1], self.steps[i + 1][0])
            for i in range(len(self.steps) - 1)
        ]

    def prefix(self, length: int) -> "Trajectory":
        """The first ``length`` steps."""
        if length < 1:
            raise ValueError("prefix length must be >= 1")
        return Trajectory(self.steps[:length])

    def visits(self, state: State) -> bool:
        """True if ``state`` occurs anywhere along the trajectory."""
        return any(s == state for s, _ in self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Trajectory):
            return self.steps == other.steps
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.steps)

    def __repr__(self) -> str:
        inner = " ".join(
            f"({state!r},{action!r})" if action is not None else f"({state!r})"
            for state, action in self.steps
        )
        return f"Trajectory[{inner}]"
