"""Seeded trajectory sampling from MDPs and Markov chains.

The paper's case studies learn models from traces; since the original
traces are simulator-generated, this module is the trace source for the
whole repository.  All sampling goes through a ``numpy`` Generator so
experiments are reproducible bit-for-bit given a seed.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Set

import numpy as np

from repro.mdp.model import DTMC, MDP
from repro.mdp.trajectory import Trajectory

State = Hashable


class Simulator:
    """Samples trajectories from a model.

    Parameters
    ----------
    seed:
        Seed for the internal ``numpy`` Generator.  Two simulators with
        the same seed produce identical trajectories.

    Examples
    --------
    >>> from repro.mdp import chain_dtmc
    >>> sim = Simulator(seed=7)
    >>> chain = chain_dtmc(4, forward_probability=0.9)
    >>> run = sim.sample_chain(chain, max_steps=10)
    >>> run.state_at(0) == chain.initial_state
    True
    """

    def __init__(self, seed: Optional[int] = None):
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Chains
    # ------------------------------------------------------------------
    def sample_chain(
        self,
        chain: DTMC,
        max_steps: int = 1_000,
        stop_states: Optional[Set[State]] = None,
        start_state: Optional[State] = None,
    ) -> Trajectory:
        """One trajectory through a chain.

        Stops on entering a ``stop_states`` member, on an absorbing
        self-loop-only state, or after ``max_steps`` transitions.
        """
        stop_states = stop_states or set()
        state = chain.initial_state if start_state is None else start_state
        path = [state]
        for _ in range(max_steps):
            if state in stop_states:
                break
            successors = chain.successors(state)
            if successors == [state]:
                break
            probs = np.array([chain.probability(state, t) for t in successors])
            state = successors[self.rng.choice(len(successors), p=probs)]
            path.append(state)
        return Trajectory.from_states(path)

    def sample_chain_many(
        self,
        chain: DTMC,
        count: int,
        max_steps: int = 1_000,
        stop_states: Optional[Set[State]] = None,
    ) -> List[Trajectory]:
        """``count`` independent chain trajectories."""
        return [
            self.sample_chain(chain, max_steps=max_steps, stop_states=stop_states)
            for _ in range(count)
        ]

    # ------------------------------------------------------------------
    # MDPs
    # ------------------------------------------------------------------
    def sample_mdp(
        self,
        mdp: MDP,
        policy,
        max_steps: int = 1_000,
        stop_states: Optional[Set[State]] = None,
        start_state: Optional[State] = None,
    ) -> Trajectory:
        """One trajectory through an MDP under ``policy``."""
        stop_states = stop_states or set()
        state = mdp.initial_state if start_state is None else start_state
        steps = []
        for _ in range(max_steps):
            if state in stop_states:
                break
            action = policy.sample(state, self.rng)
            steps.append((state, action))
            successors = mdp.successors(state, action)
            probs = np.array([mdp.probability(state, action, t) for t in successors])
            state = successors[self.rng.choice(len(successors), p=probs)]
        steps.append((state, None))
        return Trajectory(steps)

    def sample_mdp_many(
        self,
        mdp: MDP,
        policy,
        count: int,
        max_steps: int = 1_000,
        stop_states: Optional[Set[State]] = None,
    ) -> List[Trajectory]:
        """``count`` independent MDP trajectories under ``policy``."""
        return [
            self.sample_mdp(
                mdp, policy, max_steps=max_steps, stop_states=stop_states
            )
            for _ in range(count)
        ]

    def estimate_reachability(
        self,
        chain: DTMC,
        targets: Set[State],
        samples: int = 1_000,
        max_steps: int = 1_000,
    ) -> float:
        """Monte-Carlo estimate of ``Pr[F targets]`` from the initial state.

        Used by tests to cross-validate the exact model checker.
        """
        hits = 0
        for _ in range(samples):
            run = self.sample_chain(chain, max_steps=max_steps, stop_states=targets)
            if run.state_at(len(run) - 1) in targets:
                hits += 1
        return hits / samples
