"""Dynamic-programming solvers for MDPs.

Value iteration, policy iteration, policy evaluation, Q-functions and
undiscounted expected-total-reward-to-absorption.  All solvers work on
the dictionary-based models in :mod:`repro.mdp.model` and return plain
dictionaries keyed by states, so downstream code never deals with index
arithmetic.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Optional, Set, Tuple

import numpy as np

from repro.mdp.model import DTMC, MDP
from repro.mdp.policy import DeterministicPolicy

State = Hashable
Action = Hashable

DEFAULT_TOLERANCE = 1e-10
DEFAULT_MAX_ITERATIONS = 100_000


def value_iteration(
    mdp: MDP,
    discount: float = 0.95,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> Tuple[Dict[State, float], DeterministicPolicy]:
    """Discounted value iteration.

    Solves ``V(s) = R(s) + γ · max_a Σ_t P(t|s,a) V(t)`` to within
    ``tolerance`` (sup-norm) and returns the value function together with
    a greedy optimal deterministic policy.

    Parameters
    ----------
    mdp:
        The decision process (state rewards + optional action rewards).
    discount:
        γ in ``(0, 1]``.  With γ = 1 convergence requires a proper
        (absorbing) structure; the iteration cap guards divergence.
    """
    if not 0 < discount <= 1:
        raise ValueError("discount must be in (0, 1]")
    values = {s: 0.0 for s in mdp.states}
    for _ in range(max_iterations):
        delta = 0.0
        updated: Dict[State, float] = {}
        for state in mdp.states:
            best = -np.inf
            for action in mdp.actions(state):
                total = mdp.reward(state, action) + discount * sum(
                    prob * values[target]
                    for target, prob in mdp.transitions[state][action].items()
                )
                if total > best:
                    best = total
            updated[state] = best
            delta = max(delta, abs(best - values[state]))
        values = updated
        if delta < tolerance:
            break
    return values, greedy_policy(mdp, values, discount)


def greedy_policy(
    mdp: MDP, values: Mapping[State, float], discount: float = 0.95
) -> DeterministicPolicy:
    """The deterministic policy greedy with respect to ``values``.

    Ties are broken by the MDP's action enumeration order, which makes
    the result deterministic across runs.
    """
    mapping: Dict[State, Action] = {}
    for state in mdp.states:
        best_action = None
        best_value = -np.inf
        for action in mdp.actions(state):
            total = mdp.reward(state, action) + discount * sum(
                prob * values[target]
                for target, prob in mdp.transitions[state][action].items()
            )
            if total > best_value + 1e-12:
                best_value = total
                best_action = action
        mapping[state] = best_action
    return DeterministicPolicy(mapping)


def q_values(
    mdp: MDP, values: Mapping[State, float], discount: float = 0.95
) -> Dict[Tuple[State, Action], float]:
    """The state-action value function induced by ``values``.

    ``Q(s, a) = R(s, a) + γ Σ_t P(t|s,a) V(t)`` — the quantity the car
    case study's reward-repair constraint ``Q(S1,1) > Q(S1,0)`` ranges
    over.
    """
    q: Dict[Tuple[State, Action], float] = {}
    for state in mdp.states:
        for action in mdp.actions(state):
            q[(state, action)] = mdp.reward(state, action) + discount * sum(
                prob * values[target]
                for target, prob in mdp.transitions[state][action].items()
            )
    return q


def policy_evaluation(
    mdp: MDP,
    policy,
    discount: float = 0.95,
) -> Dict[State, float]:
    """Exact policy evaluation by direct linear solve.

    Solves ``(I - γ P_π) v = r_π`` where ``P_π``/``r_π`` are the
    transition matrix and reward vector of the induced chain.
    """
    if not 0 < discount < 1:
        # With discount 1 the linear system may be singular; fall back to
        # iterative evaluation with the generic cap.
        return _iterative_policy_evaluation(mdp, policy, discount)
    n = mdp.num_states
    matrix = np.zeros((n, n))
    rewards = np.zeros(n)
    for state in mdp.states:
        i = mdp.index[state]
        for action, weight in policy.action_distribution(state).items():
            rewards[i] += weight * mdp.reward(state, action)
            for target, prob in mdp.transitions[state][action].items():
                matrix[i, mdp.index[target]] += weight * prob
    solution = np.linalg.solve(np.eye(n) - discount * matrix, rewards)
    return {s: float(solution[mdp.index[s]]) for s in mdp.states}


def _iterative_policy_evaluation(
    mdp: MDP,
    policy,
    discount: float,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> Dict[State, float]:
    values = {s: 0.0 for s in mdp.states}
    for _ in range(max_iterations):
        delta = 0.0
        updated: Dict[State, float] = {}
        for state in mdp.states:
            total = 0.0
            for action, weight in policy.action_distribution(state).items():
                total += weight * (
                    mdp.reward(state, action)
                    + discount
                    * sum(
                        prob * values[target]
                        for target, prob in mdp.transitions[state][action].items()
                    )
                )
            updated[state] = total
            delta = max(delta, abs(total - values[state]))
        values = updated
        if delta < tolerance:
            break
    return values


def policy_iteration(
    mdp: MDP,
    discount: float = 0.95,
    max_iterations: int = 1_000,
) -> Tuple[Dict[State, float], DeterministicPolicy]:
    """Howard policy iteration: evaluate, improve, repeat to fixpoint."""
    policy = DeterministicPolicy({s: mdp.actions(s)[0] for s in mdp.states})
    for _ in range(max_iterations):
        values = policy_evaluation(mdp, policy, discount)
        improved = greedy_policy(mdp, values, discount)
        if improved == policy:
            return values, policy
        policy = improved
    return policy_evaluation(mdp, policy, discount), policy


def expected_total_reward(
    chain: DTMC,
    targets: Set[State],
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> Dict[State, float]:
    """Undiscounted expected cumulative reward until reaching ``targets``.

    This is the quantity behind the paper's WSN property
    ``R{attempts} <= X [F S_n11 = 2]``: the expected number of reward
    units accumulated before first hitting the target set.  States from
    which the targets are reached with probability < 1 get ``inf``
    (standard PCTL reward semantics).
    """
    from repro.checking.graph import prob1_states  # local import: avoid cycle

    reach_certain = prob1_states(chain, targets)
    values: Dict[State, float] = {}
    for state in chain.states:
        if state in targets:
            values[state] = 0.0
        elif state not in reach_certain:
            values[state] = np.inf
        else:
            values[state] = 0.0
    # Solve the linear system restricted to states that reach with prob 1.
    unknown = [s for s in chain.states if s in reach_certain and s not in targets]
    if unknown:
        idx = {s: i for i, s in enumerate(unknown)}
        n = len(unknown)
        matrix = np.eye(n)
        vector = np.zeros(n)
        for state in unknown:
            i = idx[state]
            vector[i] = chain.state_rewards[state]
            for target, prob in chain.transitions[state].items():
                if target in idx:
                    matrix[i, idx[target]] -= prob
        solution = np.linalg.solve(matrix, vector)
        for state in unknown:
            values[state] = float(solution[idx[state]])
    return values
