"""Exact probabilistic bisimulation quotients (lumping).

Proposition 1 talks about *approximate* (ε-)bisimilarity between a model
and its repair; this module provides the exact counterpart: the largest
probabilistic bisimulation on a chain, computed by classic partition
refinement (Kanellakis–Smolka / Larsen–Skou style), and the quotient
chain it induces.  Quotienting before checking/repair shrinks symmetric
models — e.g. states of the WSN grid that are interchangeable by
symmetry lump together — without changing any PCTL property, since
bisimilar states satisfy exactly the same formulas.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Tuple

from repro.mdp.model import DTMC

State = Hashable

_PRECISION = 12  # decimal digits when comparing block-mass signatures


def bisimulation_partition(chain: DTMC) -> List[FrozenSet[State]]:
    """The coarsest probabilistic bisimulation respecting labels.

    Two states are bisimilar iff they carry the same atomic propositions
    and the same reward, and give equal probability mass to every
    bisimulation class.  Computed by iterated signature refinement: the
    initial partition groups by (labels, reward); each round re-splits
    by the vector of per-block transition masses, until stable.
    """
    def initial_key(state: State):
        return (chain.labels[state], round(chain.state_rewards[state], _PRECISION))

    blocks: Dict[object, List[State]] = {}
    for state in chain.states:
        blocks.setdefault(initial_key(state), []).append(state)
    partition = list(blocks.values())
    while True:
        block_of: Dict[State, int] = {}
        for index, block in enumerate(partition):
            for state in block:
                block_of[state] = index

        def signature(state: State) -> Tuple:
            masses: Dict[int, float] = {}
            for target, probability in chain.transitions[state].items():
                target_block = block_of[target]
                masses[target_block] = masses.get(target_block, 0.0) + probability
            return tuple(
                sorted(
                    (block, round(mass, _PRECISION))
                    for block, mass in masses.items()
                )
            )

        refined: List[List[State]] = []
        for block in partition:
            by_signature: Dict[Tuple, List[State]] = {}
            for state in block:
                by_signature.setdefault(signature(state), []).append(state)
            refined.extend(by_signature.values())
        if len(refined) == len(partition):
            return [frozenset(block) for block in refined]
        partition = refined


def quotient_chain(chain: DTMC) -> Tuple[DTMC, Dict[State, State]]:
    """The bisimulation quotient and the state-to-representative map.

    Each block is represented by its first member in the original state
    ordering; the quotient chain's transition probabilities are the
    block masses of any member (they agree by bisimilarity).

    Examples
    --------
    >>> from repro.mdp import DTMC
    >>> chain = DTMC(
    ...     states=["s", "l", "r", "t"],
    ...     transitions={
    ...         "s": {"l": 0.5, "r": 0.5},
    ...         "l": {"t": 1.0},
    ...         "r": {"t": 1.0},
    ...         "t": {"t": 1.0},
    ...     },
    ...     initial_state="s",
    ...     labels={"t": {"goal"}},
    ... )
    >>> quotient, mapping = quotient_chain(chain)
    >>> quotient.num_states   # l and r lump together
    3
    >>> mapping["l"] == mapping["r"]
    True
    """
    partition = bisimulation_partition(chain)
    order = {state: index for index, state in enumerate(chain.states)}
    representative: Dict[State, State] = {}
    for block in partition:
        leader = min(block, key=lambda s: order[s])
        for state in block:
            representative[state] = leader
    leaders = sorted({representative[s] for s in chain.states}, key=lambda s: order[s])
    transitions: Dict[State, Dict[State, float]] = {}
    for leader in leaders:
        row: Dict[State, float] = {}
        for target, probability in chain.transitions[leader].items():
            target_leader = representative[target]
            row[target_leader] = row.get(target_leader, 0.0) + probability
        transitions[leader] = row
    quotient = DTMC(
        states=leaders,
        transitions=transitions,
        initial_state=representative[chain.initial_state],
        labels={leader: chain.labels[leader] for leader in leaders},
        state_rewards={
            leader: chain.state_rewards[leader] for leader in leaders
        },
    )
    return quotient, representative
