"""ε-bisimulation utilities (Proposition 1 of the paper).

Proposition 1 (after Bartocci et al.): if ``M`` has transition matrix
``P`` and ``M'`` has ``P + Z`` with every row of ``Z`` summing to 0, then
``M`` and ``M'`` are ε-bisimilar with ε bounded by the largest absolute
entry of ``Z`` — every finite path probability in ``M'`` is within ε of
the corresponding path probability in ``M`` (per step).

This module provides the perturbation bound, a checker for the row-sum
precondition, and exact path probabilities so tests can verify the bound
empirically.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.mdp.model import DTMC
from repro.mdp.trajectory import Trajectory

State = Hashable


def perturbation_bound(original: DTMC, repaired: DTMC) -> float:
    """The ε of Proposition 1: ``max_{s,t} |P'(s,t) - P(s,t)|``.

    Both chains must share the same state space.
    """
    if original.states != repaired.states:
        raise ValueError("chains must share an identical state ordering")
    bound = 0.0
    for state in original.states:
        targets = set(original.transitions[state]) | set(repaired.transitions[state])
        for target in targets:
            diff = abs(
                original.probability(state, target)
                - repaired.probability(state, target)
            )
            if diff > bound:
                bound = diff
    return bound


def is_epsilon_bisimilar(
    original: DTMC, repaired: DTMC, epsilon: float
) -> bool:
    """True if the Proposition 1 bound holds within ``epsilon``.

    Requires that the perturbation preserves stochasticity (rows of the
    difference sum to 0 — automatic for two valid chains) and structure
    (no transition created or destroyed), matching Equation 3.
    """
    if original.states != repaired.states:
        return False
    for state in original.states:
        if set(original.transitions[state]) != set(repaired.transitions[state]):
            return False
    return perturbation_bound(original, repaired) <= epsilon + 1e-12


def path_probability(chain: DTMC, path: Sequence[State]) -> float:
    """The probability of a concrete state path under ``chain``."""
    if isinstance(path, Trajectory):
        path = path.states()
    probability = 1.0
    for i in range(len(path) - 1):
        probability *= chain.probability(path[i], path[i + 1])
        if probability == 0.0:
            return 0.0
    return probability


def path_probability_deviation(
    original: DTMC, repaired: DTMC, path: Sequence[State]
) -> float:
    """|p'(π) − p(π)| for one path — the quantity Proposition 1 bounds."""
    return abs(path_probability(repaired, path) - path_probability(original, path))
