"""Trusted Machine Learning for Markov Decision Processes.

A complete implementation of *"Model, Data and Reward Repair: Trusted
Machine Learning for Markov Decision Processes"* (Ghosh, Jha, Tiwari,
Lincoln, Zhu — DSN 2018): repair a learned MDP/Markov-chain model so it
provably satisfies PCTL trust properties, by perturbing the model
(Model Repair), the training data (Data Repair) or the reward function
(Reward Repair).

Quickstart
----------
>>> from repro import chain_dtmc, parse_pctl, ModelRepair
>>> chain = chain_dtmc(5, forward_probability=0.5)
>>> result = ModelRepair.for_chain(
...     chain, parse_pctl('R<=6 [ F "goal" ]')
... ).repair()
>>> result.status
'repaired'

Architecture
------------
``repro.symbolic``    exact polynomials / rational functions
``repro.mdp``         MDPs, chains, policies, solvers, simulation
``repro.logic``       PCTL (+ parser), finite-trace LTL, rules
``repro.checking``    concrete + parametric PCTL model checking
``repro.learning``    MLE, MaxEnt IRL, posterior regularisation
``repro.optimize``    nonlinear programs over named variables
``repro.core``        the three repairs + the TML pipeline
``repro.casestudies`` the paper's WSN and car studies
``repro.baselines``   shaping / CMDP / greedy comparators
``repro.io``          JSON round-trip, PRISM export
"""

from repro.mdp import (
    DTMC,
    MDP,
    DeterministicPolicy,
    Simulator,
    StochasticPolicy,
    Trajectory,
    chain_dtmc,
    grid_dtmc,
    policy_iteration,
    q_values,
    value_iteration,
)
from repro.logic import parse_pctl
from repro.checking import (
    DTMCModelChecker,
    MDPModelChecker,
    ParametricDTMC,
    parametric_constraint,
)
from repro.core import (
    DataRepair,
    ModelRepair,
    QValueConstraint,
    RewardRepair,
    TrustedLearningPipeline,
)
from repro.data import TraceDataset, TraceGroup
from repro.learning import MaxEntIRL, TabularFeatureMap, learn_dtmc

__version__ = "1.0.0"

__all__ = [
    "DTMC",
    "MDP",
    "Trajectory",
    "DeterministicPolicy",
    "StochasticPolicy",
    "Simulator",
    "chain_dtmc",
    "grid_dtmc",
    "value_iteration",
    "policy_iteration",
    "q_values",
    "parse_pctl",
    "DTMCModelChecker",
    "MDPModelChecker",
    "ParametricDTMC",
    "parametric_constraint",
    "ModelRepair",
    "DataRepair",
    "RewardRepair",
    "QValueConstraint",
    "TrustedLearningPipeline",
    "TraceDataset",
    "TraceGroup",
    "MaxEntIRL",
    "TabularFeatureMap",
    "learn_dtmc",
    "__version__",
]
